package minidb

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func seedClients(t *testing.T) *Database {
	t.Helper()
	db := New()
	db.MustExec("CREATE TABLE clients (id INT, name TEXT, balance INT)")
	for i := 1; i <= 20; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO clients VALUES (%d, 'client%02d', %d)", 100+i, i, i*500))
	}
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := seedClients(t)
	res, err := db.Exec("SELECT * FROM clients WHERE id = 105")
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if res.NTuples() != 1 {
		t.Fatalf("NTuples = %d, want 1", res.NTuples())
	}
	if got, want := res.Get(0, 1), "client05"; got != want {
		t.Errorf("Get(0,1) = %q, want %q", got, want)
	}
	if got, want := res.Cols, []string{"id", "name", "balance"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Cols = %v, want %v", got, want)
	}
}

func TestSelectProjectionAndOrdering(t *testing.T) {
	db := seedClients(t)
	res, err := db.Exec("SELECT name, balance FROM clients WHERE balance >= 9000 ORDER BY balance DESC")
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	want := [][]string{
		{"client20", "10000"},
		{"client19", "9500"},
		{"client18", "9000"},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("Rows = %v, want %v", res.Rows, want)
	}
}

func TestSelectLimit(t *testing.T) {
	db := seedClients(t)
	res, err := db.Exec("SELECT id FROM clients ORDER BY id LIMIT 3")
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if res.NTuples() != 3 || res.Get(0, 0) != "101" || res.Get(2, 0) != "103" {
		t.Errorf("unexpected limited rows %v", res.Rows)
	}
}

func TestCountStar(t *testing.T) {
	db := seedClients(t)
	res, err := db.Exec("SELECT COUNT(*) FROM clients WHERE balance < 3000")
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if got := res.Get(0, 0); got != "5" {
		t.Errorf("count = %q, want 5", got)
	}
}

// TestTautologyInjection is the load-bearing behaviour for attack 3.1/5: a
// string-concatenated WHERE clause injected with 1' OR '1'='1 must match every
// row, which in turn multiplies the client's fetch/print loop iterations.
func TestTautologyInjection(t *testing.T) {
	db := seedClients(t)

	normalInput := "105"
	res, err := db.Exec("SELECT * FROM clients WHERE id='" + normalInput + "'")
	if err != nil {
		t.Fatalf("normal query: %v", err)
	}
	if res.NTuples() != 1 {
		t.Fatalf("normal input returned %d rows, want 1", res.NTuples())
	}

	maliciousInput := "1' OR '1'='1"
	res, err = db.Exec("SELECT * FROM clients WHERE id='" + maliciousInput + "'")
	if err != nil {
		t.Fatalf("injected query: %v", err)
	}
	if res.NTuples() != 20 {
		t.Fatalf("tautology returned %d rows, want all 20", res.NTuples())
	}
}

func TestWherePrecedenceAndNot(t *testing.T) {
	db := seedClients(t)
	// AND binds tighter than OR: matches id=101 plus (id>=118 and balance>9000).
	res, err := db.Exec("SELECT id FROM clients WHERE id = 101 OR id >= 118 AND balance > 9000 ORDER BY id")
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	got := flatten(res)
	want := []string{"101", "119", "120"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v, want %v", got, want)
	}

	res, err = db.Exec("SELECT COUNT(*) FROM clients WHERE NOT (id = 101 OR id = 102)")
	if err != nil {
		t.Fatalf("not: %v", err)
	}
	if res.Get(0, 0) != "18" {
		t.Errorf("NOT count = %q, want 18", res.Get(0, 0))
	}
}

func TestUpdate(t *testing.T) {
	db := seedClients(t)
	res, err := db.Exec("UPDATE clients SET balance = 0, name = 'frozen' WHERE id <= 103")
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if res.Affected != 3 {
		t.Errorf("Affected = %d, want 3", res.Affected)
	}
	check := db.MustExec("SELECT name FROM clients WHERE balance = 0 ORDER BY id")
	if check.NTuples() != 3 || check.Get(0, 0) != "frozen" {
		t.Errorf("update not applied: %v", check.Rows)
	}
}

func TestDelete(t *testing.T) {
	db := seedClients(t)
	res, err := db.Exec("DELETE FROM clients WHERE balance > 9000")
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if res.Affected != 2 {
		t.Errorf("Affected = %d, want 2", res.Affected)
	}
	if n, _ := db.RowCount("clients"); n != 18 {
		t.Errorf("RowCount = %d, want 18", n)
	}
}

func TestInsertMultiRowAndCoercion(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b TEXT)")
	res, err := db.Exec("INSERT INTO t VALUES (1, 'x'), ('42', 7), ('junk', 'y')")
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if res.Affected != 3 {
		t.Errorf("Affected = %d, want 3", res.Affected)
	}
	out := db.MustExec("SELECT a, b FROM t ORDER BY a")
	want := [][]string{{"0", "y"}, {"1", "x"}, {"42", "7"}}
	if !reflect.DeepEqual(out.Rows, want) {
		t.Errorf("Rows = %v, want %v", out.Rows, want)
	}
}

func TestNullHandling(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b TEXT)")
	db.MustExec("INSERT INTO t VALUES (1, NULL), (2, 'x')")
	res := db.MustExec("SELECT COUNT(*) FROM t WHERE b = NULL")
	if res.Get(0, 0) != "1" {
		t.Errorf("b = NULL count = %q, want 1", res.Get(0, 0))
	}
	res = db.MustExec("SELECT COUNT(*) FROM t WHERE b != NULL")
	if res.Get(0, 0) != "1" {
		t.Errorf("b != NULL count = %q, want 1", res.Get(0, 0))
	}
	res = db.MustExec("SELECT COUNT(*) FROM t WHERE b < NULL")
	if res.Get(0, 0) != "0" {
		t.Errorf("b < NULL count = %q, want 0", res.Get(0, 0))
	}
	res = db.MustExec("SELECT b FROM t WHERE a = 1")
	if res.Get(0, 0) != "NULL" {
		t.Errorf("NULL renders as %q", res.Get(0, 0))
	}
}

func TestNegativeNumbers(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (-5), (3)")
	res := db.MustExec("SELECT a FROM t WHERE a < -1")
	if res.NTuples() != 1 || res.Get(0, 0) != "-5" {
		t.Errorf("negative select = %v", res.Rows)
	}
}

func TestStringEscapes(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (s TEXT)")
	db.MustExec("INSERT INTO t VALUES ('O''Brien')")
	res := db.MustExec("SELECT s FROM t WHERE s = 'O''Brien'")
	if res.NTuples() != 1 || res.Get(0, 0) != "O'Brien" {
		t.Errorf("escaped string select = %v", res.Rows)
	}
}

func TestErrors(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")

	cases := []struct {
		query string
		want  error
	}{
		{"SELECT * FROM missing", ErrNoTable},
		{"SELECT nope FROM t", ErrNoColumn},
		{"SELECT * FROM t WHERE ghost = 1", ErrNoColumn},
		{"SELECT * FROM t ORDER BY ghost", ErrNoColumn},
		{"CREATE TABLE t (a INT)", ErrExists},
		{"INSERT INTO t VALUES (1, 2)", ErrBadInsert},
		{"INSERT INTO missing VALUES (1)", ErrNoTable},
		{"UPDATE missing SET a = 1", ErrNoTable},
		{"UPDATE t SET ghost = 1", ErrNoColumn},
		{"DELETE FROM missing", ErrNoTable},
		{"BOGUS STATEMENT", ErrSyntax},
		{"SELECT FROM t", ErrSyntax},
		{"SELECT * FROM t WHERE", ErrSyntax},
		{"SELECT * FROM t WHERE a ~ 1", ErrSyntax},
		{"SELECT * FROM t WHERE a = 'unterminated", ErrSyntax},
		{"SELECT * FROM t trailing garbage", ErrSyntax},
		{"CREATE TABLE u (a BLOB)", ErrSyntax},
	}
	for _, tc := range cases {
		if _, err := db.Exec(tc.query); !errors.Is(err, tc.want) {
			t.Errorf("Exec(%q) error = %v, want %v", tc.query, err, tc.want)
		}
	}
}

func TestGetOutOfRangeIsLenient(t *testing.T) {
	db := seedClients(t)
	res := db.MustExec("SELECT id FROM clients LIMIT 1")
	if got := res.Get(5, 0); got != "" {
		t.Errorf("out-of-range row Get = %q, want empty", got)
	}
	if got := res.Get(0, 9); got != "" {
		t.Errorf("out-of-range col Get = %q, want empty", got)
	}
	var nilRes *Result
	if nilRes.NTuples() != 0 || nilRes.Get(0, 0) != "" {
		t.Error("nil Result accessors not lenient")
	}
}

func TestTableNames(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE zebra (a INT)")
	db.MustExec("CREATE TABLE apple (a INT)")
	if got, want := db.TableNames(), []string{"apple", "zebra"}; !reflect.DeepEqual(got, want) {
		t.Errorf("TableNames = %v, want %v", got, want)
	}
	if _, err := db.RowCount("missing"); !errors.Is(err, ErrNoTable) {
		t.Errorf("RowCount(missing) error = %v", err)
	}
}

func TestMustExecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustExec on bad SQL did not panic")
		}
	}()
	New().MustExec("NOT SQL AT ALL")
}

// TestConcurrentAccess exercises the engine under the race detector: the
// monitored applications run concurrently with profile training in the
// experiment harness.
func TestConcurrentAccess(t *testing.T) {
	db := seedClients(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 3 {
				case 0:
					if _, err := db.Exec("SELECT * FROM clients WHERE balance > 1000"); err != nil {
						t.Errorf("select: %v", err)
						return
					}
				case 1:
					if _, err := db.Exec(fmt.Sprintf("INSERT INTO clients VALUES (%d, 'w', 1)", 1000*w+i)); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				default:
					if _, err := db.Exec("UPDATE clients SET balance = 2 WHERE id = 101"); err != nil {
						t.Errorf("update: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCompareValuesMixedTypes(t *testing.T) {
	cases := []struct {
		l, r Value
		want int
	}{
		{IntVal(5), IntVal(5), 0},
		{IntVal(4), IntVal(5), -1},
		{TextVal("abc"), TextVal("abd"), -1},
		{IntVal(105), TextVal("105"), 0},
		{TextVal("105"), IntVal(104), 1},
		{IntVal(5), TextVal("notnum"), -1}, // falls back to string compare: "5" < "notnum"
		{NullVal(), NullVal(), 0},
		{NullVal(), IntVal(1), -1},
		{IntVal(1), NullVal(), 1},
	}
	for _, tc := range cases {
		if got := compareValues(tc.l, tc.r); got != tc.want {
			t.Errorf("compareValues(%v, %v) = %d, want %d", tc.l, tc.r, got, tc.want)
		}
	}
}

func TestValueString(t *testing.T) {
	if got := IntVal(-3).String(); got != "-3" {
		t.Errorf("IntVal String = %q", got)
	}
	if got := TextVal("hi").String(); got != "hi" {
		t.Errorf("TextVal String = %q", got)
	}
	if got := NullVal().String(); got != "NULL" {
		t.Errorf("NullVal String = %q", got)
	}
	if got := TInt.String(); got != "INT" {
		t.Errorf("TInt String = %q", got)
	}
	if got := TText.String(); got != "TEXT" {
		t.Errorf("TText String = %q", got)
	}
}

func flatten(r *Result) []string {
	var out []string
	for _, row := range r.Rows {
		out = append(out, row...)
	}
	return out
}
