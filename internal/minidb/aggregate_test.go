package minidb

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func seedProducts(t *testing.T) *Database {
	t.Helper()
	db := New()
	db.MustExec("CREATE TABLE products (id INT, name TEXT, price INT, dept TEXT)")
	rows := []struct {
		id    int
		name  string
		price int
		dept  string
	}{
		{1, "milk", 3, "dairy"},
		{2, "cheese", 9, "dairy"},
		{3, "bread", 4, "bakery"},
		{4, "bagel", 2, "bakery"},
		{5, "cake", 15, "bakery"},
		{6, "tea", 6, "drinks"},
	}
	for _, r := range rows {
		db.MustExec(fmt.Sprintf("INSERT INTO products VALUES (%d, '%s', %d, '%s')",
			r.id, r.name, r.price, r.dept))
	}
	return db
}

func TestAggregatesWithoutGroupBy(t *testing.T) {
	db := seedProducts(t)
	res := db.MustExec("SELECT COUNT(*), SUM(price), MIN(price), MAX(price), AVG(price) FROM products")
	want := []string{"6", "39", "2", "15", "6"}
	if !reflect.DeepEqual(res.Rows[0], want) {
		t.Errorf("aggregates = %v, want %v", res.Rows[0], want)
	}
	if res.Cols[1] != "sum(price)" {
		t.Errorf("Cols = %v", res.Cols)
	}
}

func TestAggregatesWithWhere(t *testing.T) {
	db := seedProducts(t)
	res := db.MustExec("SELECT SUM(price) FROM products WHERE dept = 'bakery'")
	if res.Get(0, 0) != "21" {
		t.Errorf("bakery sum = %q", res.Get(0, 0))
	}
	// Empty match: COUNT 0, MIN/MAX/AVG NULL.
	res = db.MustExec("SELECT COUNT(*), MIN(price), AVG(price) FROM products WHERE price > 100")
	if got := res.Rows[0]; !reflect.DeepEqual(got, []string{"0", "NULL", "NULL"}) {
		t.Errorf("empty aggregates = %v", got)
	}
}

func TestGroupBy(t *testing.T) {
	db := seedProducts(t)
	res := db.MustExec("SELECT dept, COUNT(*), SUM(price) FROM products GROUP BY dept")
	want := [][]string{
		{"dairy", "2", "12"},
		{"bakery", "3", "21"},
		{"drinks", "1", "6"},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("group by = %v, want %v", res.Rows, want)
	}
}

func TestGroupByErrors(t *testing.T) {
	db := seedProducts(t)
	cases := []struct {
		q    string
		want error
	}{
		{"SELECT name, COUNT(*) FROM products GROUP BY dept", ErrSyntax},
		{"SELECT dept, COUNT(*) FROM products GROUP BY ghost", ErrNoColumn},
		{"SELECT name, SUM(price) FROM products", ErrSyntax},
		{"SELECT SUM(ghost) FROM products", ErrNoColumn},
	}
	for _, tc := range cases {
		if _, err := db.Exec(tc.q); !errors.Is(err, tc.want) {
			t.Errorf("Exec(%q) err = %v, want %v", tc.q, err, tc.want)
		}
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (1), (NULL), (3)")
	res := db.MustExec("SELECT COUNT(a), COUNT(*) FROM t")
	if got := res.Rows[0]; !reflect.DeepEqual(got, []string{"2", "3"}) {
		t.Errorf("counts = %v", got)
	}
}

func TestAggregateNamedColumnStillWorks(t *testing.T) {
	// A column named like an aggregate, without parentheses, parses as a
	// plain column.
	db := New()
	db.MustExec("CREATE TABLE t (count INT)")
	db.MustExec("INSERT INTO t VALUES (7)")
	res := db.MustExec("SELECT count FROM t")
	if res.Get(0, 0) != "7" {
		t.Errorf("count column = %q", res.Get(0, 0))
	}
}

func TestLike(t *testing.T) {
	db := seedProducts(t)
	res := db.MustExec("SELECT name FROM products WHERE name LIKE 'b%' ORDER BY name")
	if got := flatten(res); !reflect.DeepEqual(got, []string{"bagel", "bread"}) {
		t.Errorf("LIKE b%% = %v", got)
	}
	res = db.MustExec("SELECT name FROM products WHERE name LIKE '%ea%' ORDER BY name")
	if got := flatten(res); !reflect.DeepEqual(got, []string{"bread", "tea"}) {
		t.Errorf("LIKE %%ea%% = %v", got)
	}
	res = db.MustExec("SELECT name FROM products WHERE name LIKE 't__'")
	if got := flatten(res); !reflect.DeepEqual(got, []string{"tea"}) {
		t.Errorf("LIKE t__ = %v", got)
	}
	// Negation is expressed as NOT (x LIKE ...) in this subset.
	res = db.MustExec("SELECT COUNT(*) FROM products WHERE NOT name LIKE '%a%'")
	if res.Get(0, 0) != "2" { // milk, cheese
		t.Errorf("NOT LIKE count = %q", res.Get(0, 0))
	}
}

func TestLikeMatchProperties(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"%", "", true},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%abc", "xxabc", true},
		{"abc%", "abcxx", true},
		{"a%b%c", "a123b456c", true},
		{"a%b%c", "acb", false},
		{"_%", "", false},
		{"_%", "x", true},
	}
	for _, tc := range cases {
		if got := likeMatch(tc.pat, tc.s); got != tc.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tc.pat, tc.s, got, tc.want)
		}
	}
	// Property: a pattern equal to the string (no wildcards) always matches.
	f := func(s string) bool {
		for _, c := range []byte(s) {
			if c == '%' || c == '_' {
				return true // skip wildcard-bearing strings
			}
		}
		return likeMatch(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIn(t *testing.T) {
	db := seedProducts(t)
	res := db.MustExec("SELECT name FROM products WHERE id IN (1, 3, 6) ORDER BY id")
	if got := flatten(res); !reflect.DeepEqual(got, []string{"milk", "bread", "tea"}) {
		t.Errorf("IN = %v", got)
	}
	res = db.MustExec("SELECT COUNT(*) FROM products WHERE dept IN ('dairy', 'drinks')")
	if res.Get(0, 0) != "3" {
		t.Errorf("IN strings = %q", res.Get(0, 0))
	}
	if _, err := db.Exec("SELECT * FROM products WHERE id IN (1; 2)"); !errors.Is(err, ErrSyntax) {
		t.Errorf("malformed IN err = %v", err)
	}
}

func TestBetween(t *testing.T) {
	db := seedProducts(t)
	res := db.MustExec("SELECT name FROM products WHERE price BETWEEN 3 AND 6 ORDER BY price")
	if got := flatten(res); !reflect.DeepEqual(got, []string{"milk", "bread", "tea"}) {
		t.Errorf("BETWEEN = %v", got)
	}
	// Inclusive bounds and NOT composition.
	res = db.MustExec("SELECT COUNT(*) FROM products WHERE NOT price BETWEEN 2 AND 15")
	if res.Get(0, 0) != "0" {
		t.Errorf("NOT BETWEEN all = %q", res.Get(0, 0))
	}
	if _, err := db.Exec("SELECT * FROM products WHERE price BETWEEN 1 OR 2"); !errors.Is(err, ErrSyntax) {
		t.Errorf("malformed BETWEEN err = %v", err)
	}
}

func TestNewPredicatesValidateColumns(t *testing.T) {
	db := seedProducts(t)
	for _, q := range []string{
		"SELECT * FROM products WHERE ghost LIKE 'x%'",
		"SELECT * FROM products WHERE ghost IN (1)",
		"SELECT * FROM products WHERE ghost BETWEEN 1 AND 2",
	} {
		if _, err := db.Exec(q); !errors.Is(err, ErrNoColumn) {
			t.Errorf("Exec(%q) err = %v, want ErrNoColumn", q, err)
		}
	}
}

func TestLikeOnNullIsFalse(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (s TEXT)")
	db.MustExec("INSERT INTO t VALUES (NULL), ('x')")
	res := db.MustExec("SELECT COUNT(*) FROM t WHERE s LIKE '%'")
	if res.Get(0, 0) != "1" {
		t.Errorf("LIKE over NULL = %q", res.Get(0, 0))
	}
}
