package minidb

import (
	"fmt"
	"testing"
)

func benchDB(rows int) *Database {
	db := New()
	db.MustExec("CREATE TABLE t (id INT, name TEXT, v INT)")
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row%d', %d)", i, i, i*7%101))
	}
	return db
}

// BenchmarkSelectWhere measures predicate scans, the client apps' hot query.
func BenchmarkSelectWhere(b *testing.B) {
	db := benchDB(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("SELECT name, v FROM t WHERE v > 50 AND id < 900"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures SQL parsing alone.
func BenchmarkParse(b *testing.B) {
	const q = "SELECT dept, COUNT(*), SUM(price) FROM products WHERE price BETWEEN 3 AND 9 AND name LIKE 'b%' GROUP BY dept ORDER BY dept LIMIT 10"
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupBy measures aggregate execution.
func BenchmarkGroupBy(b *testing.B) {
	db := benchDB(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("SELECT v, COUNT(*), SUM(id) FROM t GROUP BY v"); err != nil {
			b.Fatal(err)
		}
	}
}
