package minidb

import (
	"errors"
	"fmt"
)

// Transaction errors.
var (
	ErrTxActive = errors.New("minidb: transaction already active")
	ErrNoTx     = errors.New("minidb: no active transaction")
)

// txStmt is BEGIN, COMMIT, or ROLLBACK.
type txStmt struct {
	kind string // "begin" | "commit" | "rollback"
}

func (*txStmt) sqlStmt() {}

// Transactions give the client applications the paper describes ("different
// types of transactions containing DML queries") atomic multi-statement
// updates. The implementation is snapshot-based: BEGIN deep-copies the
// table data, ROLLBACK restores it, COMMIT discards the snapshot. One
// transaction per database at a time — the interpreter's programs are
// single-threaded clients, and nested transactions are a syntax error in
// the original engines too.

// Begin starts a transaction.
func (db *Database) Begin() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.snapshot != nil {
		return ErrTxActive
	}
	snap := make(map[string]*table, len(db.tables))
	for name, t := range db.tables {
		ct := &table{name: t.name, cols: append([]Column(nil), t.cols...)}
		ct.rows = make([][]Value, len(t.rows))
		for i, row := range t.rows {
			ct.rows[i] = append([]Value(nil), row...)
		}
		snap[name] = ct
	}
	db.snapshot = snap
	return nil
}

// Commit makes the transaction's changes permanent.
func (db *Database) Commit() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.snapshot == nil {
		return ErrNoTx
	}
	db.snapshot = nil
	return nil
}

// Rollback discards every change since Begin.
func (db *Database) Rollback() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.snapshot == nil {
		return ErrNoTx
	}
	db.tables = db.snapshot
	db.snapshot = nil
	return nil
}

// InTx reports whether a transaction is active.
func (db *Database) InTx() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.snapshot != nil
}

func (db *Database) execTx(s *txStmt) (*Result, error) {
	var err error
	switch s.kind {
	case "begin":
		err = db.Begin()
	case "commit":
		err = db.Commit()
	case "rollback":
		err = db.Rollback()
	default:
		err = fmt.Errorf("%w: unknown transaction statement %q", ErrSyntax, s.kind)
	}
	if err != nil {
		return nil, err
	}
	return &Result{}, nil
}
