package minidb

import (
	"fmt"
	"strconv"
)

// AggFunc enumerates the supported aggregate functions.
type AggFunc int

// Aggregates. AggNone marks a plain column selection.
const (
	AggNone AggFunc = iota
	AggCountStar
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

var aggNames = map[string]AggFunc{
	"count": AggCount,
	"sum":   AggSum,
	"min":   AggMin,
	"max":   AggMax,
	"avg":   AggAvg,
}

func (a AggFunc) String() string {
	switch a {
	case AggCountStar, AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return "col"
	}
}

// SelectItem is one projection entry: a column, or an aggregate over one.
type SelectItem struct {
	Agg    AggFunc
	Column string // empty for COUNT(*)
}

// aggState accumulates one aggregate over matched rows.
type aggState struct {
	fn    AggFunc
	col   int // -1 for COUNT(*)
	n     int
	sum   int64
	min   Value
	max   Value
	first bool
}

func newAggState(fn AggFunc, col int) *aggState {
	return &aggState{fn: fn, col: col, first: true}
}

func (s *aggState) add(row []Value) {
	if s.fn == AggCountStar {
		s.n++
		return
	}
	v := row[s.col]
	if v.Null {
		return // SQL aggregates skip NULLs
	}
	s.n++
	s.sum += v.Int
	if s.first || compareValues(v, s.min) < 0 {
		s.min = v
	}
	if s.first || compareValues(v, s.max) > 0 {
		s.max = v
	}
	s.first = false
}

func (s *aggState) result() string {
	switch s.fn {
	case AggCountStar, AggCount:
		return strconv.Itoa(s.n)
	case AggSum:
		return strconv.FormatInt(s.sum, 10)
	case AggMin:
		if s.first {
			return "NULL"
		}
		return s.min.String()
	case AggMax:
		if s.first {
			return "NULL"
		}
		return s.max.String()
	case AggAvg:
		if s.n == 0 {
			return "NULL"
		}
		return strconv.FormatInt(s.sum/int64(s.n), 10)
	default:
		return ""
	}
}

// execAggregate evaluates an aggregate projection (with optional GROUP BY)
// over the matched rows.
func execAggregate(t *table, s *SelectStmt, matched [][]Value) (*Result, error) {
	// Resolve projections once.
	type proj struct {
		item SelectItem
		col  int
	}
	projs := make([]proj, 0, len(s.Items))
	cols := make([]string, 0, len(s.Items))
	for _, it := range s.Items {
		p := proj{item: it, col: -1}
		if it.Column != "" {
			p.col = t.colIndex(it.Column)
			if p.col < 0 {
				return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, t.name, it.Column)
			}
		} else if it.Agg != AggCountStar {
			return nil, fmt.Errorf("%w: %s() needs a column", ErrSyntax, it.Agg)
		}
		projs = append(projs, p)
		if it.Agg == AggNone {
			cols = append(cols, it.Column)
		} else if it.Column == "" {
			cols = append(cols, it.Agg.String())
		} else {
			cols = append(cols, it.Agg.String()+"("+it.Column+")")
		}
	}

	groupCol := -1
	if s.GroupBy != "" {
		groupCol = t.colIndex(s.GroupBy)
		if groupCol < 0 {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, t.name, s.GroupBy)
		}
		// Plain columns in an aggregate+GROUP BY projection must be the
		// grouping column.
		for _, p := range projs {
			if p.item.Agg == AggNone && p.col != groupCol {
				return nil, fmt.Errorf("%w: column %s not in GROUP BY", ErrSyntax, p.item.Column)
			}
		}
	} else {
		for _, p := range projs {
			if p.item.Agg == AggNone {
				return nil, fmt.Errorf("%w: mixing %s with aggregates requires GROUP BY", ErrSyntax, p.item.Column)
			}
		}
	}

	type group struct {
		key    string
		states []*aggState
	}
	mkStates := func() []*aggState {
		states := make([]*aggState, len(projs))
		for i, p := range projs {
			states[i] = newAggState(p.item.Agg, p.col)
		}
		return states
	}

	if groupCol < 0 {
		states := mkStates()
		for _, row := range matched {
			for _, st := range states {
				if st.fn != AggNone {
					st.add(row)
				}
			}
		}
		cells := make([]string, len(states))
		for i, st := range states {
			cells[i] = st.result()
		}
		return &Result{Cols: cols, Rows: [][]string{cells}}, nil
	}

	var order []string
	groups := map[string]*group{}
	for _, row := range matched {
		key := row[groupCol].String()
		g, ok := groups[key]
		if !ok {
			g = &group{key: key, states: mkStates()}
			groups[key] = g
			order = append(order, key)
		}
		for i, st := range g.states {
			if projs[i].item.Agg != AggNone {
				st.add(row)
			}
		}
	}
	out := &Result{Cols: cols}
	for _, key := range order {
		g := groups[key]
		cells := make([]string, len(projs))
		for i, p := range projs {
			if p.item.Agg == AggNone {
				cells[i] = g.key
			} else {
				cells[i] = g.states[i].result()
			}
		}
		out.Rows = append(out.Rows, cells)
	}
	return out, nil
}
