package minidb

import (
	"fmt"
	"strconv"
	"strings"
)

// validateWhere checks every column reference in the predicate against the
// table schema, so that bad queries fail deterministically even when the
// table is empty and the predicate would never be evaluated.
func validateWhere(t *table, w WhereExpr) error {
	switch e := w.(type) {
	case nil:
		return nil
	case *AndExpr:
		if err := validateWhere(t, e.L); err != nil {
			return err
		}
		return validateWhere(t, e.R)
	case *OrExpr:
		if err := validateWhere(t, e.L); err != nil {
			return err
		}
		return validateWhere(t, e.R)
	case *NotExpr:
		return validateWhere(t, e.X)
	case *CmpExpr:
		for _, o := range []Operand{e.L, e.R} {
			if o.IsColumn && t.colIndex(o.Column) < 0 {
				return fmt.Errorf("%w: %s.%s", ErrNoColumn, t.name, o.Column)
			}
		}
		return nil
	case *LikeExpr:
		return validateOperand(t, e.X)
	case *InExpr:
		return validateOperand(t, e.X)
	case *BetweenExpr:
		return validateOperand(t, e.X)
	default:
		return fmt.Errorf("%w: unknown predicate %T", ErrSyntax, w)
	}
}

// evalWhere evaluates a predicate against one row; a nil predicate matches
// every row.
func evalWhere(t *table, row []Value, w WhereExpr) (bool, error) {
	if w == nil {
		return true, nil
	}
	switch e := w.(type) {
	case *AndExpr:
		l, err := evalWhere(t, row, e.L)
		if err != nil || !l {
			return false, err
		}
		return evalWhere(t, row, e.R)
	case *OrExpr:
		l, err := evalWhere(t, row, e.L)
		if err != nil || l {
			return l, err
		}
		return evalWhere(t, row, e.R)
	case *NotExpr:
		x, err := evalWhere(t, row, e.X)
		if err != nil {
			return false, err
		}
		return !x, nil
	case *CmpExpr:
		return evalCmp(t, row, e)
	case *LikeExpr:
		v, err := resolveOperand(t, row, e.X)
		if err != nil {
			return false, err
		}
		if v.Null {
			return false, nil
		}
		return likeMatch(e.Pattern, v.String()), nil
	case *InExpr:
		v, err := resolveOperand(t, row, e.X)
		if err != nil {
			return false, err
		}
		if v.Null {
			return false, nil
		}
		for _, cand := range e.Vals {
			if !cand.Null && compareValues(v, cand) == 0 {
				return true, nil
			}
		}
		return false, nil
	case *BetweenExpr:
		v, err := resolveOperand(t, row, e.X)
		if err != nil {
			return false, err
		}
		if v.Null || e.Lo.Null || e.Hi.Null {
			return false, nil
		}
		return compareValues(v, e.Lo) >= 0 && compareValues(v, e.Hi) <= 0, nil
	default:
		return false, fmt.Errorf("%w: unknown predicate %T", ErrSyntax, w)
	}
}

// likeMatch implements SQL LIKE: % matches any run, _ any single byte.
func likeMatch(pattern, s string) bool {
	// Iterative two-pointer matching with backtracking on the last %.
	pi, si := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si = ss
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func evalCmp(t *table, row []Value, e *CmpExpr) (bool, error) {
	l, err := resolveOperand(t, row, e.L)
	if err != nil {
		return false, err
	}
	r, err := resolveOperand(t, row, e.R)
	if err != nil {
		return false, err
	}
	// SQL three-valued logic collapsed to false for NULL comparisons, except
	// explicit equality with NULL.
	if l.Null || r.Null {
		switch e.Op {
		case "=":
			return l.Null && r.Null, nil
		case "!=", "<>":
			return l.Null != r.Null, nil
		default:
			return false, nil
		}
	}
	cmp := compareValues(l, r)
	switch e.Op {
	case "=":
		return cmp == 0, nil
	case "!=", "<>":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("%w: unknown operator %q", ErrSyntax, e.Op)
	}
}

func validateOperand(t *table, o Operand) error {
	if o.IsColumn && t.colIndex(o.Column) < 0 {
		return fmt.Errorf("%w: %s.%s", ErrNoColumn, t.name, o.Column)
	}
	return nil
}

func resolveOperand(t *table, row []Value, o Operand) (Value, error) {
	if !o.IsColumn {
		return o.Lit, nil
	}
	ci := t.colIndex(o.Column)
	if ci < 0 {
		return Value{}, fmt.Errorf("%w: %s.%s", ErrNoColumn, t.name, o.Column)
	}
	return row[ci], nil
}

// compareValues orders two non-NULL values. Mixed INT/TEXT comparisons
// coerce the text to a number when possible (MySQL's lenient comparison,
// which the paper's injectable banking query depends on: id='105' matches
// the INT column id), otherwise both sides compare as strings.
func compareValues(l, r Value) int {
	if l.Null || r.Null {
		switch {
		case l.Null && r.Null:
			return 0
		case l.Null:
			return -1
		default:
			return 1
		}
	}
	if l.Type == TInt && r.Type == TInt {
		return cmpInt(l.Int, r.Int)
	}
	if l.Type == TText && r.Type == TText {
		return strings.Compare(l.Text, r.Text)
	}
	// Mixed: try numeric coercion of the text side.
	if l.Type == TInt {
		if n, err := strconv.ParseInt(strings.TrimSpace(r.Text), 10, 64); err == nil {
			return cmpInt(l.Int, n)
		}
		return strings.Compare(l.String(), r.Text)
	}
	if n, err := strconv.ParseInt(strings.TrimSpace(l.Text), 10, 64); err == nil {
		return cmpInt(n, r.Int)
	}
	return strings.Compare(l.Text, r.String())
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// coerceTo converts a literal to the column's declared type, mirroring the
// lenient coercion of the C client stacks (numbers stored into TEXT become
// their decimal rendering; numeric strings stored into INT parse, with
// non-numeric text degrading to 0).
func coerceTo(v Value, t Type) Value {
	if v.Null {
		return v
	}
	if v.Type == t {
		return v
	}
	if t == TText {
		return TextVal(v.String())
	}
	n, err := strconv.ParseInt(strings.TrimSpace(v.Text), 10, 64)
	if err != nil {
		return IntVal(0)
	}
	return IntVal(n)
}
