package minidb

import (
	"errors"
	"testing"
)

func TestTransactionCommit(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (1)")
	db.MustExec("BEGIN")
	db.MustExec("INSERT INTO t VALUES (2)")
	db.MustExec("UPDATE t SET a = 10 WHERE a = 1")
	if !db.InTx() {
		t.Fatal("InTx = false inside transaction")
	}
	db.MustExec("COMMIT")
	if db.InTx() {
		t.Fatal("InTx = true after commit")
	}
	res := db.MustExec("SELECT a FROM t ORDER BY a")
	if got := flatten(res); len(got) != 2 || got[0] != "2" || got[1] != "10" {
		t.Errorf("after commit: %v", got)
	}
}

func TestTransactionRollback(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (1)")
	db.MustExec("BEGIN TRANSACTION")
	db.MustExec("DELETE FROM t")
	db.MustExec("INSERT INTO t VALUES (99)")
	if n, _ := db.RowCount("t"); n != 1 {
		t.Fatalf("mid-tx rows = %d", n)
	}
	db.MustExec("ROLLBACK")
	res := db.MustExec("SELECT a FROM t")
	if got := flatten(res); len(got) != 1 || got[0] != "1" {
		t.Errorf("after rollback: %v", got)
	}
}

func TestTransactionErrors(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	if _, err := db.Exec("COMMIT"); !errors.Is(err, ErrNoTx) {
		t.Errorf("commit without tx: %v", err)
	}
	if _, err := db.Exec("ROLLBACK"); !errors.Is(err, ErrNoTx) {
		t.Errorf("rollback without tx: %v", err)
	}
	db.MustExec("BEGIN")
	if _, err := db.Exec("BEGIN"); !errors.Is(err, ErrTxActive) {
		t.Errorf("nested begin: %v", err)
	}
	db.MustExec("ROLLBACK")
}

func TestRollbackRestoresCreatedTables(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("BEGIN")
	db.MustExec("CREATE TABLE scratch (x INT)")
	db.MustExec("ROLLBACK")
	if _, err := db.Exec("SELECT * FROM scratch"); !errors.Is(err, ErrNoTable) {
		t.Errorf("scratch survived rollback: %v", err)
	}
	if _, err := db.Exec("SELECT * FROM t"); err != nil {
		t.Errorf("original table lost: %v", err)
	}
}
