// Package minidb implements a small in-memory relational database engine with
// a string SQL interface.
//
// It stands in for the PostgreSQL/MySQL servers the paper's client
// applications talk to. The engine executes real SQL text, which is essential
// for reproducing the paper's attacks: a tautology injected into a WHERE
// clause (attack 3.1/5) or a query rewritten in transit (attack 3.2) must
// genuinely change the result cardinality, because it is the extra
// mysql_fetch_row/printf iterations over those rows that alter the
// application's library-call sequence.
//
// Supported statements: CREATE TABLE, INSERT, SELECT (with *, column lists,
// COUNT(*), WHERE, ORDER BY, LIMIT), UPDATE, and DELETE. Values are typed
// INT or TEXT with lenient cross-type comparison, matching the stringly
// behaviour of the C client libraries the paper instruments.
package minidb

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Errors reported by the engine. Exec wraps these so callers can errors.Is.
var (
	ErrSyntax    = errors.New("minidb: syntax error")
	ErrNoTable   = errors.New("minidb: no such table")
	ErrNoColumn  = errors.New("minidb: no such column")
	ErrExists    = errors.New("minidb: table already exists")
	ErrBadInsert = errors.New("minidb: insert arity mismatch")
)

// Type is a column type.
type Type int

// Column types.
const (
	TInt Type = iota
	TText
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TText:
		return "TEXT"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Type Type
}

// Value is a single cell. Null values have Null set.
type Value struct {
	Null bool
	Type Type
	Int  int64
	Text string
}

// IntVal builds an INT value.
func IntVal(v int64) Value { return Value{Type: TInt, Int: v} }

// TextVal builds a TEXT value.
func TextVal(v string) Value { return Value{Type: TText, Text: v} }

// NullVal builds a NULL value.
func NullVal() Value { return Value{Null: true} }

// String renders the cell as the client libraries would (libpq's PQgetvalue
// returns strings for every type).
func (v Value) String() string {
	switch {
	case v.Null:
		return "NULL"
	case v.Type == TInt:
		return strconv.FormatInt(v.Int, 10)
	default:
		return v.Text
	}
}

type table struct {
	name string
	cols []Column
	rows [][]Value
}

func (t *table) colIndex(name string) int {
	for i, c := range t.cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Database is an in-memory relational database. All methods are safe for
// concurrent use.
type Database struct {
	mu       sync.RWMutex
	tables   map[string]*table
	snapshot map[string]*table // pre-transaction state; nil outside a tx
}

// New returns an empty database.
func New() *Database {
	return &Database{tables: map[string]*table{}}
}

// Result is the outcome of executing one statement. For row-returning
// statements Cols and Rows are set; for DML, Affected counts modified rows.
// Cells are pre-rendered to strings, mirroring the libpq/MySQL C interfaces
// the instrumented applications consume.
type Result struct {
	Cols     []string
	Rows     [][]string
	Affected int
}

// NTuples returns the number of result rows.
func (r *Result) NTuples() int {
	if r == nil {
		return 0
	}
	return len(r.Rows)
}

// Get returns the cell at (row, col), or "" when out of range — libpq returns
// an empty string for out-of-range PQgetvalue rather than failing, and the
// dataset programs rely on that leniency.
func (r *Result) Get(row, col int) string {
	if r == nil || row < 0 || row >= len(r.Rows) {
		return ""
	}
	cells := r.Rows[row]
	if col < 0 || col >= len(cells) {
		return ""
	}
	return cells[col]
}

// Exec parses and executes one SQL statement.
func (db *Database) Exec(query string) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *CreateStmt:
		return db.execCreate(s)
	case *InsertStmt:
		return db.execInsert(s)
	case *SelectStmt:
		return db.execSelect(s)
	case *UpdateStmt:
		return db.execUpdate(s)
	case *DeleteStmt:
		return db.execDelete(s)
	case *txStmt:
		return db.execTx(s)
	default:
		return nil, fmt.Errorf("%w: unsupported statement %T", ErrSyntax, stmt)
	}
}

// MustExec executes query and panics on error; intended for dataset seeding.
func (db *Database) MustExec(query string) *Result {
	r, err := db.Exec(query)
	if err != nil {
		panic(fmt.Sprintf("minidb: MustExec(%q): %v", query, err))
	}
	return r
}

// TableNames returns the sorted names of all tables.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RowCount returns the number of rows currently in the named table.
func (db *Database) RowCount(tableName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	return len(t.rows), nil
}

func (db *Database) execCreate(s *CreateStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[s.Table]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, s.Table)
	}
	db.tables[s.Table] = &table{name: s.Table, cols: append([]Column(nil), s.Cols...)}
	return &Result{}, nil
}

func (db *Database) execInsert(s *InsertStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	for _, tuple := range s.Rows {
		if len(tuple) != len(t.cols) {
			return nil, fmt.Errorf("%w: table %s has %d columns, got %d values",
				ErrBadInsert, s.Table, len(t.cols), len(tuple))
		}
		row := make([]Value, len(tuple))
		for i, lit := range tuple {
			row[i] = coerceTo(lit, t.cols[i].Type)
		}
		t.rows = append(t.rows, row)
	}
	return &Result{Affected: len(s.Rows)}, nil
}

func (db *Database) execSelect(s *SelectStmt) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out, err := db.selectLocked(s)
	if err != nil {
		return nil, err
	}
	for arm := s.Union; arm != nil; arm = arm.Union {
		right, err := db.selectLocked(arm)
		if err != nil {
			return nil, err
		}
		if len(right.Cols) != len(out.Cols) {
			return nil, fmt.Errorf("%w: UNION arms select %d and %d columns",
				ErrSyntax, len(out.Cols), len(right.Cols))
		}
		out.Rows = append(out.Rows, right.Rows...)
	}
	if s.Union != nil && !unionAllOnly(s) {
		out.Rows = dedupRows(out.Rows)
	}
	return out, nil
}

// unionAllOnly reports whether every UNION in the chain is UNION ALL; a
// single plain UNION deduplicates the whole result, the mini engine's
// flattening of standard left-associative binding.
func unionAllOnly(s *SelectStmt) bool {
	for ; s.Union != nil; s = s.Union {
		if !s.UnionAll {
			return false
		}
	}
	return true
}

// dedupRows removes duplicate result rows, keeping first occurrences in
// order (UNION distinct semantics over pre-rendered cells).
func dedupRows(rows [][]string) [][]string {
	seen := make(map[string]bool, len(rows))
	kept := rows[:0]
	for _, r := range rows {
		var key string
		for i, c := range r {
			if i > 0 {
				key += "\x00"
			}
			key += c
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		kept = append(kept, r)
	}
	return kept
}

// selectLocked evaluates one SELECT arm (no UNION handling) under the
// caller's read lock.
func (db *Database) selectLocked(s *SelectStmt) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}

	matched, err := filterRows(t, s.Where)
	if err != nil {
		return nil, err
	}

	if s.HasAggregates() || s.GroupBy != "" {
		return execAggregate(t, s, matched)
	}

	if s.OrderBy != "" {
		oi := t.colIndex(s.OrderBy)
		if oi < 0 {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, s.OrderBy)
		}
		sort.SliceStable(matched, func(a, b int) bool {
			cmp := compareValues(matched[a][oi], matched[b][oi])
			if s.OrderDesc {
				return cmp > 0
			}
			return cmp < 0
		})
	}

	if s.Limit >= 0 && len(matched) > s.Limit {
		matched = matched[:s.Limit]
	}

	// Resolve the projection.
	var idxs []int
	var cols []string
	if s.Star {
		idxs = make([]int, len(t.cols))
		cols = make([]string, len(t.cols))
		for i, c := range t.cols {
			idxs[i] = i
			cols[i] = c.Name
		}
	} else {
		for _, it := range s.Items {
			ci := t.colIndex(it.Column)
			if ci < 0 {
				return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, it.Column)
			}
			idxs = append(idxs, ci)
			cols = append(cols, it.Column)
		}
	}

	out := &Result{Cols: cols, Rows: make([][]string, 0, len(matched))}
	for _, row := range matched {
		cells := make([]string, len(idxs))
		for i, ci := range idxs {
			cells[i] = row[ci].String()
		}
		out.Rows = append(out.Rows, cells)
	}
	return out, nil
}

func (db *Database) execUpdate(s *UpdateStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	type setOp struct {
		col int
		val Value
	}
	if err := validateWhere(t, s.Where); err != nil {
		return nil, err
	}
	ops := make([]setOp, 0, len(s.Sets))
	for _, set := range s.Sets {
		ci := t.colIndex(set.Column)
		if ci < 0 {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, set.Column)
		}
		ops = append(ops, setOp{col: ci, val: coerceTo(set.Value, t.cols[ci].Type)})
	}
	n := 0
	for _, row := range t.rows {
		match, err := evalWhere(t, row, s.Where)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		for _, op := range ops {
			row[op.col] = op.val
		}
		n++
	}
	return &Result{Affected: n}, nil
}

func (db *Database) execDelete(s *DeleteStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, s.Table)
	}
	if err := validateWhere(t, s.Where); err != nil {
		return nil, err
	}
	kept := t.rows[:0]
	n := 0
	for _, row := range t.rows {
		match, err := evalWhere(t, row, s.Where)
		if err != nil {
			return nil, err
		}
		if match {
			n++
			continue
		}
		kept = append(kept, row)
	}
	t.rows = kept
	return &Result{Affected: n}, nil
}

func filterRows(t *table, where WhereExpr) ([][]Value, error) {
	if err := validateWhere(t, where); err != nil {
		return nil, err
	}
	var matched [][]Value
	for _, row := range t.rows {
		ok, err := evalWhere(t, row, where)
		if err != nil {
			return nil, err
		}
		if ok {
			matched = append(matched, row)
		}
	}
	return matched, nil
}
