package detect

import (
	"math"
	"strings"
	"testing"
)

func TestExplainPinpointsTheForeignCall(t *testing.T) {
	p, traces, _ := trainAppH(t)

	// Take a long normal window and corrupt one position.
	var window []string
	for _, tr := range traces {
		for _, w := range tr.LabelWindows(p.WindowLen) {
			if len(w) == p.WindowLen {
				window = append([]string(nil), w...)
			}
		}
		if window != nil {
			break
		}
	}
	if window == nil {
		t.Fatal("no full window")
	}
	corrupt := 9
	window[corrupt] = "ptrace"

	ex, err := Explain(p, window)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.WorstIndex != corrupt {
		t.Errorf("WorstIndex = %d (%q), want %d", ex.WorstIndex, window[ex.WorstIndex], corrupt)
	}
	// Step log-likelihoods sum to the window's total log probability.
	var sum float64
	for _, v := range ex.StepLL {
		sum += v
	}
	total := p.Score(window) * float64(len(window))
	if math.Abs(sum-total) > 1e-9 {
		t.Errorf("Σ StepLL = %v, total = %v", sum, total)
	}
	if len(ex.Path) != len(window) {
		t.Errorf("path length %d", len(ex.Path))
	}
	if ex.PathLL > sum+1e-9 {
		t.Errorf("Viterbi path LL %v exceeds total LL %v", ex.PathLL, sum)
	}

	out := ex.String()
	if !strings.Contains(out, "ptrace") || !strings.Contains(out, "<-- lowest") {
		t.Errorf("rendering missing data:\n%s", out)
	}
}

func TestExplainEmptyWindow(t *testing.T) {
	p, _, _ := trainAppH(t)
	ex, err := Explain(p, nil)
	if err != nil || len(ex.StepLL) != 0 {
		t.Errorf("empty explain = %+v, %v", ex, err)
	}
}
