package detect

import (
	"math/rand"
	"reflect"
	"testing"

	"adprom/internal/collector"
	"adprom/internal/hmm"
)

// TestObserveBatchMatchesObserve: feeding a stream through ObserveBatch in
// arbitrary chunks must yield exactly the alerts (bitwise scores and bounds
// included), sequence numbers, judge-hook calls, and Flush behaviour of the
// per-call path — in both scorer modes.
func TestObserveBatchMatchesObserve(t *testing.T) {
	p, traces, _ := trainAppH(t)
	r := rand.New(rand.NewSource(17))

	// Concatenate traces and splice in foreign calls, OOC callers, and an
	// origin-carrying leak call so every alert flavour appears.
	var stream []collector.Call
	for _, tr := range traces {
		stream = append(stream, tr...)
	}
	for i := 0; i < 8; i++ {
		stream = append(stream, collector.Call{
			Label: "curl_easy_perform", Name: "curl_easy_perform", Caller: "main",
		})
	}
	if len(stream) > 4 {
		c := stream[3]
		c.Caller = "unexpected_fn"
		stream = append(stream, c)
	}
	for _, tr := range traces {
		stream = append(stream, tr...)
	}

	type hookCall struct {
		seq     int
		score   float64
		flagged bool
	}

	for _, mode := range []hmm.ScorerMode{hmm.ScorerExact, hmm.ScorerTopK(4)} {
		var refHooks, batHooks []hookCall
		ref := NewEngine(p)
		ref.SetScorerMode(mode)
		ref.SetJudgeHook(func(seq int, score float64, flagged bool) error {
			refHooks = append(refHooks, hookCall{seq, score, flagged})
			return nil
		})
		var want []Alert
		for _, c := range stream {
			want = append(want, ref.Observe(c)...)
		}

		bat := NewEngine(p)
		bat.SetScorerMode(mode)
		bat.SetJudgeHook(func(seq int, score float64, flagged bool) error {
			batHooks = append(batHooks, hookCall{seq, score, flagged})
			return nil
		})
		var got []Alert
		for lo := 0; lo < len(stream); {
			hi := lo + 1 + r.Intn(40)
			if hi > len(stream) {
				hi = len(stream)
			}
			got = append(got, bat.ObserveBatch(stream[lo:hi])...)
			lo = hi
		}

		if len(got) != len(want) {
			t.Fatalf("mode %v: batch raised %d alerts, per-call %d", mode, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("mode %v alert %d:\nbatch    %+v\nper-call %+v", mode, i, got[i], want[i])
			}
		}
		if !reflect.DeepEqual(refHooks, batHooks) {
			t.Fatalf("mode %v: judge-hook sequences differ (%d vs %d calls)", mode, len(batHooks), len(refHooks))
		}
		if !reflect.DeepEqual(bat.Flush(), ref.Flush()) {
			t.Fatalf("mode %v: Flush histories differ", mode)
		}
	}
}

// TestObserveBatchPartialWindows: batches shorter than the window length keep
// the ring consistent, so a later Flush judges the same short window the
// per-call path would.
func TestObserveBatchPartialWindows(t *testing.T) {
	p, traces, _ := trainAppH(t)
	short := traces[0]
	if len(short) > p.WindowLen-2 {
		short = short[:p.WindowLen-2]
	}

	ref := NewEngine(p)
	for _, c := range short {
		ref.Observe(c)
	}
	bat := NewEngine(p)
	bat.ObserveBatch(short[:len(short)/2])
	bat.ObserveBatch(short[len(short)/2:])

	if !reflect.DeepEqual(bat.Flush(), ref.Flush()) {
		t.Fatalf("short-stream Flush differs: batch %+v, per-call %+v", bat.Flush(), ref.Flush())
	}
}

// TestObserveBatchEmpty: a nil batch is a no-op.
func TestObserveBatchEmpty(t *testing.T) {
	p, _, _ := trainAppH(t)
	e := NewEngine(p)
	if out := e.ObserveBatch(nil); out != nil {
		t.Fatalf("empty batch returned %v", out)
	}
	if len(e.Alerts()) != 0 {
		t.Fatalf("empty batch recorded alerts")
	}
}
