package detect

import (
	"fmt"
	"strings"

	"adprom/internal/profile"
)

// Explanation breaks a flagged window down for the security administrator:
// which call dragged the probability below the threshold, and what hidden
// path the model believes the program took. The paper's Detection Engine
// only reports the flag; this is the natural forensic extension the HMM
// machinery supports for free (the decoding problem of §II).
type Explanation struct {
	// Window is the explained call sequence.
	Window []string
	// StepLL[i] is the incremental log-likelihood of symbol i given the
	// prefix before it — the "cost" of each call.
	StepLL []float64
	// WorstIndex is the position with the lowest StepLL.
	WorstIndex int
	// Path is the Viterbi hidden-state sequence; PathLL its log probability.
	Path   []int
	PathLL float64
}

// Explain computes the per-call breakdown of a window under a profile.
func Explain(p *profile.Profile, window []string) (*Explanation, error) {
	if len(window) == 0 {
		return &Explanation{}, nil
	}
	enc := p.Encode(window)
	ex := &Explanation{
		Window: append([]string(nil), window...),
		StepLL: make([]float64, len(window)),
	}

	prev := 0.0
	for i := 1; i <= len(enc); i++ {
		ll, err := p.Model.LogProb(enc[:i])
		if err != nil {
			return nil, fmt.Errorf("detect: explaining window: %w", err)
		}
		ex.StepLL[i-1] = ll - prev
		prev = ll
	}
	worst := 0
	for i, v := range ex.StepLL {
		if v < ex.StepLL[worst] {
			worst = i
		}
	}
	ex.WorstIndex = worst

	path, pll, err := p.Model.Viterbi(enc)
	if err != nil {
		return nil, fmt.Errorf("detect: explaining window: %w", err)
	}
	ex.Path = path
	ex.PathLL = pll
	return ex, nil
}

// String renders the explanation as an administrator-facing table.
func (ex *Explanation) String() string {
	var sb strings.Builder
	sb.WriteString("call                          step-logprob\n")
	for i, l := range ex.Window {
		marker := "  "
		if i == ex.WorstIndex {
			marker = "<-- lowest"
		}
		fmt.Fprintf(&sb, "%-30s %10.3f %s\n", l, ex.StepLL[i], marker)
	}
	return sb.String()
}
