package detect

import (
	"sync"
	"testing"

	"adprom/internal/collector"
	"adprom/internal/ctm"
	"adprom/internal/dataset"
	"adprom/internal/ddg"
	"adprom/internal/hmm"
	"adprom/internal/profile"
)

var appHOnce struct {
	sync.Once
	p      *profile.Profile
	traces []collector.Trace
	app    *dataset.App
	err    error
}

// trainAppH builds the full pipeline once and caches it: the profile is only
// read by the engines under test.
func trainAppH(t *testing.T) (*profile.Profile, []collector.Trace, *dataset.App) {
	t.Helper()
	appHOnce.Do(func() {
		appHOnce.p, appHOnce.traces, appHOnce.app, appHOnce.err = trainAppHUncached()
	})
	if appHOnce.err != nil {
		t.Fatal(appHOnce.err)
	}
	return appHOnce.p, appHOnce.traces, appHOnce.app
}

func trainAppHUncached() (*profile.Profile, []collector.Trace, *dataset.App, error) {
	app := dataset.AppH()
	info := ddg.Analyze(app.Prog)
	funcs, err := ctm.BuildAll(app.Prog, info)
	if err != nil {
		return nil, nil, nil, err
	}
	pm, err := ctm.Aggregate(app.Prog, funcs)
	if err != nil {
		return nil, nil, nil, err
	}
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		return nil, nil, nil, err
	}
	p, err := profile.Build(app.Prog, pm, traces, profile.Options{Train: hmm.TrainOptions{MaxIters: 8}})
	if err != nil {
		return nil, nil, nil, err
	}
	return p, traces, app, nil
}

func TestNormalTracesRaiseNoAlerts(t *testing.T) {
	p, traces, _ := trainAppH(t)
	for _, tr := range traces {
		e := NewEngine(p)
		for _, c := range tr {
			for _, a := range e.Observe(c) {
				t.Fatalf("normal trace raised %v (score %v < %v, window %v)",
					a.Flag, a.Score, a.Threshold, a.Window)
			}
		}
		e.Flush()
	}
}

func TestForeignCallsRaiseAnomalous(t *testing.T) {
	p, traces, _ := trainAppH(t)
	// Splice a burst of foreign calls into a normal trace (A-S2 style).
	base := traces[0]
	mutated := append(collector.Trace{}, base...)
	for i := 0; i < 6; i++ {
		mutated = append(mutated, collector.Call{
			Label: "curl_easy_perform", Name: "curl_easy_perform", Caller: "main",
		})
	}
	e := NewEngine(p)
	var flags []Flag
	for _, c := range mutated {
		for _, a := range e.Observe(c) {
			flags = append(flags, a.Flag)
		}
	}
	if len(flags) == 0 {
		t.Fatal("foreign burst raised nothing")
	}
	anomalous := 0
	for _, f := range flags {
		if f == FlagAnomalous || f == FlagDL {
			anomalous++
		}
	}
	if anomalous == 0 {
		t.Errorf("flags = %v, want probability alerts", flags)
	}
}

func TestOutOfContextFlag(t *testing.T) {
	p, traces, _ := trainAppH(t)
	e := NewEngine(p)
	// PQexec is known, but never from function "menu".
	alerts := e.Observe(collector.Call{Label: "PQexec", Name: "PQexec", Caller: "menu"})
	found := false
	for _, a := range alerts {
		if a.Flag == FlagOutOfContext && a.Label == "PQexec" && a.Caller == "menu" {
			found = true
		}
	}
	if !found {
		t.Errorf("alerts = %+v, want OutOfContext", alerts)
	}
	// The same call from its legitimate caller is quiet.
	e2 := NewEngine(p)
	for _, c := range traces[0] {
		if a := e2.Observe(c); len(a) != 0 {
			t.Fatalf("legit call raised %+v", a)
		}
	}
}

func TestDLFlagCarriesOrigins(t *testing.T) {
	p, traces, app := trainAppH(t)
	_ = app
	// A window that is anomalous AND contains a _Q call must raise DL with
	// the query origin attached. Construct one: take a normal window that
	// contains a leak label, then corrupt its other calls.
	var leakWindow collector.Trace
	for _, tr := range traces {
		for _, w := range tr.Windows(p.WindowLen) {
			for _, c := range w {
				if len(c.Origins) > 0 {
					leakWindow = append(collector.Trace{}, w...)
				}
			}
			if leakWindow != nil {
				break
			}
		}
		if leakWindow != nil {
			break
		}
	}
	if leakWindow == nil {
		t.Fatal("no leak window in normal traces")
	}
	for i := 0; i < len(leakWindow); i++ {
		if len(leakWindow[i].Origins) == 0 {
			leakWindow[i] = collector.Call{Label: "alien", Name: "alien", Caller: "main"}
		}
	}
	e := NewEngine(p)
	var dl *Alert
	for _, c := range leakWindow {
		for _, a := range e.Observe(c) {
			if a.Flag == FlagDL {
				cp := a
				dl = &cp
			}
		}
	}
	for _, a := range e.Flush() {
		if a.Flag == FlagDL {
			cp := a
			dl = &cp
		}
	}
	if dl == nil {
		t.Fatal("no DL alert raised")
	}
	if len(dl.Origins) == 0 {
		t.Errorf("DL alert has no origins: %+v", dl)
	}
}

func TestThresholdOverride(t *testing.T) {
	p, traces, _ := trainAppH(t)
	e := NewEngine(p)
	e.SetThreshold(0) // per-symbol log-prob is always < 0 ⇒ everything flags
	if e.Threshold() != 0 {
		t.Fatal("SetThreshold ignored")
	}
	count := 0
	for _, c := range traces[0] {
		count += len(e.Observe(c))
	}
	// The first trace may be shorter than the window; Flush judges it.
	for _, a := range e.Flush() {
		if a.Flag == FlagAnomalous || a.Flag == FlagDL {
			count++
		}
	}
	if count == 0 {
		t.Error("threshold 0 raised nothing")
	}
}

func TestClassify(t *testing.T) {
	p, traces, _ := trainAppH(t)
	normal := traces[0].LabelWindows(p.WindowLen)[0]
	if flag, score := Classify(p, p.Threshold, normal); flag != FlagNormal || score < p.Threshold {
		t.Errorf("normal window classified %v (%v)", flag, score)
	}

	foreign := make([]string, p.WindowLen)
	for i := range foreign {
		foreign[i] = "alien"
	}
	if flag, _ := Classify(p, p.Threshold, foreign); flag != FlagAnomalous {
		t.Errorf("foreign window classified %v", flag)
	}

	// A leak label inside a low-probability window upgrades to DL.
	var leak string
	for l := range p.LeakLabels {
		leak = l
		break
	}
	if leak == "" {
		t.Fatal("profile has no leak labels")
	}
	mixed := append([]string(nil), foreign...)
	mixed[3] = leak
	if flag, _ := Classify(p, p.Threshold, mixed); flag != FlagDL {
		t.Errorf("leaky window classified %v", flag)
	}
}

func TestShortTraceFlushJudgesOnce(t *testing.T) {
	p, _, _ := trainAppH(t)
	e := NewEngine(p)
	e.SetThreshold(0)
	e.Observe(collector.Call{Label: "alien", Name: "alien", Caller: "main"})
	e.Observe(collector.Call{Label: "alien", Name: "alien", Caller: "main"})
	alerts := e.Flush()
	probAlerts := 0
	for _, a := range alerts {
		if a.Flag == FlagAnomalous || a.Flag == FlagDL {
			probAlerts++
		}
	}
	if probAlerts != 1 {
		t.Errorf("short trace raised %d probability alerts, want 1 (from Flush)", probAlerts)
	}
}

func TestFlagString(t *testing.T) {
	cases := map[Flag]string{
		FlagNormal:       "Normal",
		FlagAnomalous:    "Anomalous",
		FlagDL:           "DL",
		FlagOutOfContext: "OutOfContext",
		Flag(9):          "Flag(9)",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(f), got, want)
		}
	}
}

// TestSensitiveTouchCounting exercises the sensitive-touch counter that the
// shedding tier reads for per-session risk: profile leak labels and
// administrator-installed sensitive labels both count, the counter survives
// Reset via Adopt, and Reset clears both the counter and the label set.
func TestSensitiveTouchCounting(t *testing.T) {
	p, traces, _ := trainAppH(t)
	e := NewEngine(p)

	var leak, plain string
	for l := range p.LeakLabels {
		leak = l
		break
	}
	for _, s := range p.Symbols {
		if !p.LeakLabels[s] {
			plain = s
			break
		}
	}
	if leak == "" || plain == "" {
		t.Fatalf("profile needs both a leak label and a plain label (leak=%q plain=%q)", leak, plain)
	}

	e.Observe(collector.Call{Label: plain})
	if got := e.SensitiveTouches(); got != 0 {
		t.Fatalf("plain label counted as sensitive: touches = %d", got)
	}
	e.Observe(collector.Call{Label: leak})
	if got := e.SensitiveTouches(); got != 1 {
		t.Fatalf("leak label touches = %d, want 1", got)
	}

	e.SetSensitiveLabels(map[string]bool{plain: true})
	e.Observe(collector.Call{Label: plain})
	if got := e.SensitiveTouches(); got != 2 {
		t.Fatalf("administrator label touches = %d, want 2", got)
	}

	// Adopt carries the counter across an engine swap (retraining hot-swap).
	next := NewEngine(p)
	next.Adopt(e)
	if got := next.SensitiveTouches(); got != 2 {
		t.Fatalf("Adopt lost the sensitive counter: touches = %d, want 2", got)
	}
	// ...but not the owner-installed label set.
	next.Observe(collector.Call{Label: plain})
	if got := next.SensitiveTouches(); got != 2 {
		t.Fatalf("Adopt must not carry sensitive labels: touches = %d, want 2", got)
	}

	e.Reset()
	if got := e.SensitiveTouches(); got != 0 {
		t.Fatalf("Reset kept sensitive touches: %d", got)
	}
	e.Observe(collector.Call{Label: plain})
	if got := e.SensitiveTouches(); got != 0 {
		t.Fatalf("Reset kept sensitive labels: touches = %d", got)
	}

	// The traces the profile was trained on necessarily touch leak labels;
	// a replayed normal stream must therefore accumulate touches.
	fresh := NewEngine(p)
	for _, c := range traces[0] {
		fresh.Observe(c)
	}
	if fresh.SensitiveTouches() == 0 {
		t.Fatal("replaying a training trace accumulated zero sensitive touches")
	}
}
