package detect

import (
	"testing"

	"adprom/internal/collector"
)

func TestMarkFalsePositiveLowersThreshold(t *testing.T) {
	p, traces, _ := trainAppH(t)
	e := NewEngine(p)
	// Tune the threshold aggressively so a legitimate trace flags.
	e.SetThreshold(0)
	var fp *Alert
	for _, c := range traces[5] {
		for _, a := range e.Observe(c) {
			if a.Flag == FlagAnomalous || a.Flag == FlagDL {
				cp := a
				fp = &cp
			}
		}
	}
	for _, a := range e.Flush() {
		if a.Flag == FlagAnomalous || a.Flag == FlagDL {
			cp := a
			fp = &cp
		}
	}
	if fp == nil {
		t.Fatal("aggressive threshold raised nothing")
	}

	e.MarkFalsePositive(*fp, 0)
	if e.Threshold() >= fp.Score {
		t.Fatalf("threshold %v not below FP score %v", e.Threshold(), fp.Score)
	}
	// The same behaviour no longer alerts.
	e2 := NewEngine(p)
	e2.SetThreshold(e.Threshold())
	count := 0
	for _, c := range traces[5] {
		count += len(e2.Observe(c))
	}
	for _, a := range e2.Flush() {
		_ = a
	}
	probAlerts := 0
	for _, a := range e2.Alerts() {
		if a.Flag == FlagAnomalous || a.Flag == FlagDL {
			probAlerts++
		}
	}
	if probAlerts != 0 {
		t.Errorf("behaviour still alerts after FP feedback: %d", probAlerts)
	}
	_ = count
}

func TestMarkFalsePositiveWhitelistsOOC(t *testing.T) {
	p, _, _ := trainAppH(t)
	e := NewEngine(p)
	call := collector.Call{Label: "PQexec", Name: "PQexec", Caller: "menu"}
	alerts := e.Observe(call)
	if len(alerts) != 1 || alerts[0].Flag != FlagOutOfContext {
		t.Fatalf("expected OOC alert, got %+v", alerts)
	}
	e.MarkFalsePositive(alerts[0], 0)
	if again := e.Observe(call); len(again) != 0 {
		t.Errorf("whitelisted pair still alerts: %+v", again)
	}
	// Other unexpected pairs still alert.
	if other := e.Observe(collector.Call{Label: "PQexec", Name: "PQexec", Caller: "ghostFn"}); len(other) == 0 {
		t.Error("unrelated OOC suppressed")
	}
}

func TestAutoAdaptRelaxesThreshold(t *testing.T) {
	p, traces, _ := trainAppH(t)
	e := NewEngine(p)
	// Start with a threshold that sits just below normal scores, then let
	// auto-adaptation pull it further down as near-threshold normals stream.
	start := p.Threshold + 0.04 // tighten a little
	e.SetThreshold(start)
	e.EnableAutoAdapt(0.5, 1.0)
	for _, tr := range traces {
		e.ResetWindow()
		for _, c := range tr {
			e.Observe(c)
		}
		e.Flush() // short traces are judged (and adapted on) here
	}
	if e.Threshold() >= start {
		t.Errorf("auto-adapt did not relax threshold: %v -> %v", start, e.Threshold())
	}
	// Clamping: absurd rates are normalised.
	e2 := NewEngine(p)
	e2.EnableAutoAdapt(99, -1)
	if e2.adaptRate != 1 || e2.adaptMargin <= 0 {
		t.Errorf("rate/margin not clamped: %v %v", e2.adaptRate, e2.adaptMargin)
	}
}
