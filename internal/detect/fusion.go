package detect

import (
	"adprom/internal/collector"
	"adprom/internal/sqlchan"
)

// The fused judge combines the call-window HMM channel and the SQL-behaviour
// channel (internal/sqlchan) into one verdict. Both channels are calibrated
// the same way — threshold = worst training window minus a slack — so their
// scores compare on a common footing: each channel's *anomaly margin* is
//
//	margin = threshold − score
//
// positive when the channel's own threshold is crossed. The fused score is
// the weighted sum of the latest margins (log-linear fusion of the two
// window likelihoods), and the decision rule is an OR-escalation:
//
//	flag if hmmMargin > 0            (the HMM channel fired)
//	  or if sqlMargin > 0            (the SQL channel fired)
//	  or if fused > −EscalationSlack (both channels jointly near-threshold)
//
// Every alert names the channel(s) whose rule fired in Alert.Channels, so a
// flag always says which evidence raised it. With non-negative weights the
// fused score is monotone in each margin: raising either channel's anomaly
// can never un-flag a window (see the property tests).

// Channel provenance names recorded in Alert.Channels and
// obsv.Decision.Channels.
const (
	// ChannelHMM marks an alert whose call-window score crossed the HMM
	// threshold.
	ChannelHMM = "hmm"
	// ChannelSQL marks an alert whose query-window score crossed the SQL
	// channel threshold.
	ChannelSQL = "sql"
	// ChannelFused marks an alert raised (or co-signed) by the weighted
	// fusion rule.
	ChannelFused = "fusion"
)

// ChannelNames lists the provenance channels in metric index order — the
// order metrics.Counters.AddChannelAlert and the adprom_channel_alerts_total
// family use.
var ChannelNames = [...]string{ChannelHMM, ChannelSQL, ChannelFused}

// ChannelIndex maps a provenance channel name to its metric index, -1 for
// unknown names.
func ChannelIndex(name string) int {
	for i, n := range ChannelNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Fusion defaults.
const (
	// DefaultChannelWeight is the per-channel weight when unset.
	DefaultChannelWeight = 0.5
	// DefaultEscalationSlack is how far inside both thresholds the weighted
	// margin may reach and still escalate: jointly-suspicious windows whose
	// fused margin exceeds −DefaultEscalationSlack are flagged even when
	// neither channel crossed its own threshold.
	DefaultEscalationSlack = 0.05
)

// FusionConfig tunes the fused judge. The zero value selects the defaults
// (equal 0.5 weights, 0.05 escalation slack).
type FusionConfig struct {
	// HMMWeight and SQLWeight are the non-negative log-linear fusion
	// weights; 0 selects the 0.5 default, negatives are clamped to 0.
	HMMWeight float64
	SQLWeight float64
	// EscalationSlack sets the fused-escalation rule: fire when the
	// weighted margin exceeds −EscalationSlack. 0 selects the 0.05 default;
	// a negative value disables fused escalation entirely, leaving the pure
	// OR of the per-channel thresholds.
	EscalationSlack float64
}

func (c FusionConfig) withDefaults() FusionConfig {
	if c.HMMWeight == 0 {
		c.HMMWeight = DefaultChannelWeight
	}
	if c.SQLWeight == 0 {
		c.SQLWeight = DefaultChannelWeight
	}
	if c.HMMWeight < 0 {
		c.HMMWeight = 0
	}
	if c.SQLWeight < 0 {
		c.SQLWeight = 0
	}
	if c.EscalationSlack == 0 {
		c.EscalationSlack = DefaultEscalationSlack
	}
	return c
}

// Fuse returns the weighted fused anomaly margin. Monotone non-decreasing
// in both arguments (the weights are non-negative after defaulting).
func (c FusionConfig) Fuse(hmmMargin, sqlMargin float64) float64 {
	return c.HMMWeight*hmmMargin + c.SQLWeight*sqlMargin
}

// Escalates reports whether a fused margin triggers the escalation rule.
func (c FusionConfig) Escalates(fused float64) bool {
	return c.EscalationSlack >= 0 && fused > -c.EscalationSlack
}

// noteHMM records an HMM window's anomaly margin and evaluates fused
// escalation. Without an SQL channel it is a no-op returning (false, 0), so
// the single-channel judge paths are untouched.
func (e *Engine) noteHMM(score float64) (fusedFired bool, fused float64) {
	if e.sqlScorer == nil {
		return false, 0
	}
	e.lastHMM = e.threshold - score
	e.hmmSeen = true
	return e.fusedState()
}

// fusedState computes the weighted fused margin from the latest per-channel
// margins. Escalation requires both channels to have judged a window since
// the last window reset — a single channel's evidence alone is the OR rule's
// business, and fusing against a phantom zero margin would double-count it.
func (e *Engine) fusedState() (fusedFired bool, fused float64) {
	var h, s float64
	if e.hmmSeen {
		h = e.lastHMM
	}
	if e.sqlSeen {
		s = e.lastSQL
	}
	fused = e.fusion.Fuse(h, s)
	if !e.hmmSeen || !e.sqlSeen {
		return false, fused
	}
	return e.fusion.Escalates(fused), fused
}

// stampChannels records provenance on an HMM-window alert: which channel
// rules fired, the SQL channel's latest judgement, and the fused margin. A
// no-op without an SQL channel, so single-channel alerts stay bit-identical.
func (e *Engine) stampChannels(a *Alert, score, fused float64, fusedFired bool) {
	if e.sqlScorer == nil {
		return
	}
	if score < e.threshold {
		a.Channels = append(a.Channels, ChannelHMM)
	}
	if fusedFired {
		a.Channels = append(a.Channels, ChannelFused)
	}
	if e.sqlSeen {
		a.SQLScore = e.lastSQLScore
		a.SQLThreshold = e.lastSQLThreshold
	}
	if e.hmmSeen && e.sqlSeen {
		a.FusedScore = fused
	}
}

// judgeSQLWindow classifies a completed (or flushed partial) SQL-channel
// window: the verdict's per-query score against the SQL profile's calibrated
// threshold, plus the fused escalation rule. c is the query-bearing call
// whose observation completed the window. Flagged windows carry the window's
// query signatures as Alert.Window and upgrade to DL when the window touched
// a sensitive column or the triggering call outputs targeted data.
func (e *Engine) judgeSQLWindow(seq int, c *collector.Call, v sqlchan.Verdict) (Alert, bool) {
	e.lastSQL = v.Threshold - v.Score
	e.sqlSeen = true
	e.lastSQLScore, e.lastSQLThreshold = v.Score, v.Threshold
	fusedFired, fused := e.fusedState()
	sqlFired := v.Score < v.Threshold
	e.traceJudgement(ChannelSQL, seq, v.Score, v.Threshold, 0, fused, fusedFired, sqlFired || fusedFired)
	if !sqlFired && !fusedFired {
		return Alert{}, false
	}
	a := Alert{
		Flag:         FlagAnomalous,
		Seq:          seq,
		Label:        c.Label,
		Caller:       c.Caller,
		SQLScore:     v.Score,
		SQLThreshold: v.Threshold,
		Window:       e.sqlScorer.AppendWindow(nil),
	}
	if sqlFired {
		a.Channels = append(a.Channels, ChannelSQL)
	}
	if fusedFired {
		a.Channels = append(a.Channels, ChannelFused)
	}
	if e.hmmSeen {
		a.FusedScore = fused
	}
	if v.Sensitive {
		a.Flag = FlagDL
	}
	e.attachLeak(&a, c)
	return a, true
}
