package detect

// Adaptive thresholding (paper §IV-D, citing [29]): the security
// administrator reduces the false-positive rate over time when the program's
// behaviour legitimately drifts. Two mechanisms are provided:
//
//   - MarkFalsePositive: explicit administrator feedback on one alert. The
//     threshold drops just below the alert's score, so recurrences of that
//     behaviour stay quiet.
//   - EnableAutoAdapt: the engine tracks the lowest scores it accepts and
//     decays the threshold toward (lowest seen − margin) at a configured
//     rate, emulating an administrator who periodically re-tunes.

// MarkFalsePositive records an administrator verdict that alert was benign:
// the threshold moves below the alert's score by margin (a non-positive
// margin defaults to 0.02). Alerts without a probability score (OutOfContext)
// instead whitelist the (label, caller) pair.
func (e *Engine) MarkFalsePositive(a Alert, margin float64) {
	if margin <= 0 {
		margin = 0.02
	}
	switch a.Flag {
	case FlagAnomalous, FlagDL:
		if t := a.Score - margin; t < e.threshold {
			e.threshold = t
		}
	case FlagOutOfContext:
		if e.oocAllowed == nil {
			e.oocAllowed = map[[2]string]bool{}
		}
		e.oocAllowed[[2]string{a.Label, a.Caller}] = true
	}
}

// EnableAutoAdapt turns on automatic threshold decay: after every scored
// window, the threshold moves a fraction rate of the way toward the lowest
// accepted score minus margin. rate is clamped to (0, 1].
func (e *Engine) EnableAutoAdapt(rate, margin float64) {
	if rate <= 0 {
		rate = 0.05
	}
	if rate > 1 {
		rate = 1
	}
	if margin <= 0 {
		margin = 0.05
	}
	e.adaptRate = rate
	e.adaptMargin = margin
}

// adapt nudges the threshold after a window scored s and was accepted.
func (e *Engine) adapt(s float64) {
	if e.adaptRate == 0 {
		return
	}
	target := s - e.adaptMargin
	if target < e.threshold {
		e.threshold += e.adaptRate * (target - e.threshold)
	}
}
