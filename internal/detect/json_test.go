package detect

import (
	"encoding/json"
	"fmt"
	"testing"
)

func TestFlagJSONRoundTrip(t *testing.T) {
	for f := FlagNormal; f <= FlagOutOfContext; f++ {
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + f.String() + `"`; string(b) != want {
			t.Errorf("%v marshals to %s, want %s", f, b, want)
		}
		var got Flag
		if err := json.Unmarshal(b, &got); err != nil || got != f {
			t.Errorf("round trip of %v: got %v, err %v", f, got, err)
		}
	}

	// Unknown values survive via the numeric fallback form.
	b, err := json.Marshal(Flag(9))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"Flag(9)"` {
		t.Fatalf("Flag(9) marshals to %s", b)
	}
	var got Flag
	if err := json.Unmarshal(b, &got); err != nil || got != Flag(9) {
		t.Fatalf("Flag(9) round trip: %v %v", got, err)
	}

	// Legacy sinks wrote bare integers.
	if err := json.Unmarshal([]byte(`2`), &got); err != nil || got != FlagDL {
		t.Fatalf("legacy integer: %v %v", got, err)
	}
	if err := json.Unmarshal([]byte(`"Bogus"`), &got); err == nil {
		t.Fatal("bogus name accepted")
	}

	// The numeric fallback covers every legacy spelling: each named flag's
	// integer value, out-of-taxonomy integers, and the Flag(n) string form.
	for f := FlagNormal; f <= FlagOutOfContext; f++ {
		var n Flag
		if err := json.Unmarshal([]byte(fmt.Sprint(int(f))), &n); err != nil || n != f {
			t.Errorf("legacy integer %d: got %v, err %v", int(f), n, err)
		}
	}
	if err := json.Unmarshal([]byte(`42`), &got); err != nil || got != Flag(42) {
		t.Errorf("out-of-taxonomy integer: got %v, err %v", got, err)
	}
	if err := json.Unmarshal([]byte(`"Flag(42)"`), &got); err != nil || got != Flag(42) {
		t.Errorf("Flag(n) string form: got %v, err %v", got, err)
	}
	// Non-integer and malformed payloads are rejected, not silently zeroed.
	for _, bad := range []string{`1.5`, `true`, `{"x":1}`, `"Flag(x)"`} {
		prev := got
		if err := json.Unmarshal([]byte(bad), &got); err == nil {
			t.Errorf("malformed flag %s accepted as %v", bad, got)
		}
		got = prev
	}

	// A whole legacy alert record with a numeric flag still decodes.
	var legacy Alert
	if err := json.Unmarshal([]byte(`{"Flag":3,"Seq":7,"Label":"printf"}`), &legacy); err != nil ||
		legacy.Flag != FlagOutOfContext || legacy.Seq != 7 {
		t.Errorf("legacy alert record: %+v, err %v", legacy, err)
	}

	// Flags embedded in alerts serialise by name.
	out, err := json.Marshal(Alert{Flag: FlagAnomalous, Label: "fwrite"})
	if err != nil {
		t.Fatal(err)
	}
	var decoded Alert
	if err := json.Unmarshal(out, &decoded); err != nil || decoded.Flag != FlagAnomalous {
		t.Fatalf("alert round trip: %+v %v", decoded, err)
	}
}
