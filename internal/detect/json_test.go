package detect

import (
	"encoding/json"
	"testing"
)

func TestFlagJSONRoundTrip(t *testing.T) {
	for f := FlagNormal; f <= FlagOutOfContext; f++ {
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + f.String() + `"`; string(b) != want {
			t.Errorf("%v marshals to %s, want %s", f, b, want)
		}
		var got Flag
		if err := json.Unmarshal(b, &got); err != nil || got != f {
			t.Errorf("round trip of %v: got %v, err %v", f, got, err)
		}
	}

	// Unknown values survive via the numeric fallback form.
	b, err := json.Marshal(Flag(9))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"Flag(9)"` {
		t.Fatalf("Flag(9) marshals to %s", b)
	}
	var got Flag
	if err := json.Unmarshal(b, &got); err != nil || got != Flag(9) {
		t.Fatalf("Flag(9) round trip: %v %v", got, err)
	}

	// Legacy sinks wrote bare integers.
	if err := json.Unmarshal([]byte(`2`), &got); err != nil || got != FlagDL {
		t.Fatalf("legacy integer: %v %v", got, err)
	}
	if err := json.Unmarshal([]byte(`"Bogus"`), &got); err == nil {
		t.Fatal("bogus name accepted")
	}

	// Flags embedded in alerts serialise by name.
	out, err := json.Marshal(Alert{Flag: FlagAnomalous, Label: "fwrite"})
	if err != nil {
		t.Fatal(err)
	}
	var decoded Alert
	if err := json.Unmarshal(out, &decoded); err != nil || decoded.Flag != FlagAnomalous {
		t.Fatalf("alert round trip: %+v %v", decoded, err)
	}
}
