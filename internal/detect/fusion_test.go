package detect

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"adprom/internal/attack"
	"adprom/internal/collector"
	"adprom/internal/ctm"
	"adprom/internal/dataset"
	"adprom/internal/ddg"
	"adprom/internal/hmm"
	"adprom/internal/profile"
	"adprom/internal/sqlchan"
)

func TestFusionConfigDefaults(t *testing.T) {
	got := FusionConfig{}.withDefaults()
	want := FusionConfig{
		HMMWeight:       DefaultChannelWeight,
		SQLWeight:       DefaultChannelWeight,
		EscalationSlack: DefaultEscalationSlack,
	}
	if got != want {
		t.Errorf("withDefaults() = %+v, want %+v", got, want)
	}
	clamped := FusionConfig{HMMWeight: -1, SQLWeight: -2, EscalationSlack: -1}.withDefaults()
	if clamped.HMMWeight != 0 || clamped.SQLWeight != 0 {
		t.Errorf("negative weights not clamped: %+v", clamped)
	}
	if clamped.EscalationSlack >= 0 {
		t.Errorf("negative slack must survive as the escalation-off switch: %+v", clamped)
	}
}

func TestChannelIndexRoundTrip(t *testing.T) {
	for i, name := range ChannelNames {
		if got := ChannelIndex(name); got != i {
			t.Errorf("ChannelIndex(%q) = %d, want %d", name, got, i)
		}
	}
	if got := ChannelIndex("carrier-pigeon"); got != -1 {
		t.Errorf("unknown channel = %d, want -1", got)
	}
}

// Fusion must be monotone: improving either channel's anomaly margin never
// decreases the fused margin, and never turns an escalating state
// non-escalating.
func TestFusionMonotone(t *testing.T) {
	cfg := FusionConfig{}.withDefaults()
	margins := []float64{-3, -0.2, -0.051, -0.05, 0, 0.04, 1, 7}
	for _, h := range margins {
		for _, s := range margins {
			base := cfg.Fuse(h, s)
			for _, d := range []float64{0.01, 0.5, 4} {
				if up := cfg.Fuse(h+d, s); up < base {
					t.Fatalf("Fuse(%v+%v, %v) = %v < %v", h, d, s, up, base)
				}
				if up := cfg.Fuse(h, s+d); up < base {
					t.Fatalf("Fuse(%v, %v+%v) = %v < %v", h, s, d, up, base)
				}
				if cfg.Escalates(base) && !cfg.Escalates(base+d) {
					t.Fatalf("escalation lost as fused margin rose from %v", base)
				}
			}
		}
	}
}

func TestEscalationSlackSemantics(t *testing.T) {
	cfg := FusionConfig{}.withDefaults()
	if cfg.Escalates(-cfg.EscalationSlack) {
		t.Error("fused margin exactly at -slack must not escalate")
	}
	if !cfg.Escalates(-cfg.EscalationSlack + 1e-9) {
		t.Error("fused margin just above -slack must escalate")
	}
	off := FusionConfig{EscalationSlack: -1}.withDefaults()
	for _, f := range []float64{-1, 0, 0.5, math.Inf(1)} {
		if off.Escalates(f) {
			t.Errorf("negative slack must disable escalation, fired at %v", f)
		}
	}
}

var appBOnce struct {
	sync.Once
	p      *profile.Profile
	sqlP   *sqlchan.Profile
	traces []collector.Trace
	app    *dataset.App
	err    error
}

// trainAppB builds the banking app's HMM and SQL profiles once; fusion tests
// need an app whose traces carry executed queries.
func trainAppB(t *testing.T) (*profile.Profile, *sqlchan.Profile, []collector.Trace, *dataset.App) {
	t.Helper()
	appBOnce.Do(func() {
		app := dataset.AppB()
		info := ddg.Analyze(app.Prog)
		funcs, err := ctm.BuildAll(app.Prog, info)
		if err != nil {
			appBOnce.err = err
			return
		}
		pm, err := ctm.Aggregate(app.Prog, funcs)
		if err != nil {
			appBOnce.err = err
			return
		}
		traces, err := app.CollectTraces(collector.ModeADPROM)
		if err != nil {
			appBOnce.err = err
			return
		}
		p, err := profile.Build(app.Prog, pm, traces, profile.Options{Train: hmm.TrainOptions{MaxIters: 8}})
		if err != nil {
			appBOnce.err = err
			return
		}
		sqlP, err := sqlchan.Train(traces, sqlchan.Options{SensitiveColumns: []string{"name", "balance"}})
		if err != nil {
			appBOnce.err = err
			return
		}
		appBOnce.p, appBOnce.sqlP, appBOnce.traces, appBOnce.app = p, sqlP, traces, app
	})
	if appBOnce.err != nil {
		t.Fatal(appBOnce.err)
	}
	return appBOnce.p, appBOnce.sqlP, appBOnce.traces, appBOnce.app
}

// adversarialTraces collects runs of the HMM-evading attacks so fusion tests
// exercise SQL-flagged windows, alongside the clean suite.
func adversarialTraces(t *testing.T, app *dataset.App) []collector.Trace {
	t.Helper()
	var out []collector.Trace
	for _, atk := range attack.SQLChannelAttacks() {
		prog, err := atk.Apply(app.Prog)
		if err != nil {
			t.Fatal(err)
		}
		cases := atk.Cases
		if cases == nil {
			cases = app.TestCases
		}
		for _, tc := range cases {
			tr, err := app.RunCase(prog, tc, collector.ModeADPROM, atk.Setup)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, tr)
		}
	}
	return out
}

// replay feeds traces through e exactly as core.Monitor.ObserveTrace does
// (window reset per trace, batch observe, flush) and returns the full alert
// history.
func replay(e *Engine, traces []collector.Trace) []Alert {
	for _, tr := range traces {
		e.ResetWindow()
		e.ObserveBatch(tr)
	}
	e.Flush()
	return e.Alerts()
}

// With no SQL channel installed the engine must ignore SQL and Rows entirely:
// the alert history over query-bearing traces is bit-identical to the same
// traces with those fields stripped, and no alert carries channel provenance.
func TestDisabledSQLChannelBitIdentical(t *testing.T) {
	p, _, traces, app := trainAppB(t)
	all := append(append([]collector.Trace{}, traces...), adversarialTraces(t, app)...)

	stripped := make([]collector.Trace, len(all))
	for i, tr := range all {
		s := make(collector.Trace, len(tr))
		copy(s, tr)
		for j := range s {
			s[j].SQL = ""
			s[j].Rows = 0
		}
		stripped[i] = s
	}

	withSQL := replay(NewEngine(p), all)
	withoutSQL := replay(NewEngine(p), stripped)
	if !reflect.DeepEqual(withSQL, withoutSQL) {
		t.Fatalf("SQL fields leaked into a single-channel engine:\nwith:    %+v\nwithout: %+v",
			withSQL, withoutSQL)
	}
	for _, a := range withSQL {
		if len(a.Channels) != 0 || a.SQLScore != 0 || a.SQLThreshold != 0 || a.FusedScore != 0 {
			t.Fatalf("single-channel alert carries fusion provenance: %+v", a)
		}
	}
}

// Every fused-engine alert that crossed a threshold must name exactly the
// channels that crossed, and the stamped per-channel scores must agree with
// the named provenance.
func TestFusedAlertProvenance(t *testing.T) {
	p, sqlP, traces, app := trainAppB(t)
	e := NewEngine(p)
	e.SetSQLChannel(sqlchan.NewScorer(sqlP), FusionConfig{})
	alerts := replay(e, append(append([]collector.Trace{}, traces...), adversarialTraces(t, app)...))
	if len(alerts) == 0 {
		t.Fatal("adversarial traces raised no alerts")
	}
	sawSQL := false
	for _, a := range alerts {
		if a.Flag == FlagOutOfContext {
			continue // OOC is structural, judged outside the scoring channels
		}
		if len(a.Channels) == 0 {
			t.Fatalf("scored alert names no channel: %+v", a)
		}
		for _, ch := range a.Channels {
			switch ch {
			case ChannelHMM:
				if a.Score >= a.Threshold {
					t.Errorf("alert names hmm but score %.4f >= threshold %.4f", a.Score, a.Threshold)
				}
			case ChannelSQL:
				sawSQL = true
				if a.SQLScore >= a.SQLThreshold {
					t.Errorf("alert names sql but score %.4f >= threshold %.4f", a.SQLScore, a.SQLThreshold)
				}
			case ChannelFused:
				// Escalation: fused margin above the slack; both sub-scores
				// are stamped for the analyst.
			default:
				t.Errorf("unknown channel %q in %+v", ch, a)
			}
		}
		if len(a.Window) == 0 {
			t.Errorf("alert carries no window: %+v", a)
		}
	}
	if !sawSQL {
		t.Error("no alert named the SQL channel over HMM-evading attacks")
	}
}

// The clean suite through the fused engine must stay silent: adding the
// second channel cannot cost false positives on training-distribution
// behaviour.
func TestFusedEngineNoFalsePositives(t *testing.T) {
	p, sqlP, traces, _ := trainAppB(t)
	e := NewEngine(p)
	e.SetSQLChannel(sqlchan.NewScorer(sqlP), FusionConfig{})
	if alerts := replay(e, traces); len(alerts) != 0 {
		t.Fatalf("clean traces raised %d alerts through the fused engine: %+v", len(alerts), alerts)
	}
}
