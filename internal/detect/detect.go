// Package detect implements AD-PROM's Detection Engine (paper §IV-B4,
// §IV-D): it receives n-length call sequences from the Calls Collector,
// scores them against the trained profile, and flags anomalies to the
// security administrator.
//
// Alerts carry the paper's four flags: Normal, Anomalous (a low-probability
// window with no TD output), DL (a low-probability window containing an
// output of targeted data — connected to its source query origins), and
// OutOfContext (a legitimate library call issued from a function that never
// issues it).
package detect

import (
	"fmt"

	"adprom/internal/collector"
	"adprom/internal/interp"
	"adprom/internal/profile"
)

// Flag classifies an observation.
type Flag int

// The paper's alert taxonomy (§V-C).
const (
	FlagNormal Flag = iota
	FlagAnomalous
	FlagDL
	FlagOutOfContext
)

func (f Flag) String() string {
	switch f {
	case FlagNormal:
		return "Normal"
	case FlagAnomalous:
		return "Anomalous"
	case FlagDL:
		return "DL"
	case FlagOutOfContext:
		return "OutOfContext"
	default:
		return fmt.Sprintf("Flag(%d)", int(f))
	}
}

// Alert is one detection-engine finding.
type Alert struct {
	Flag Flag
	// Seq is the index of the triggering call in the monitored stream.
	Seq int
	// Label and Caller identify the triggering call.
	Label  string
	Caller string
	// Score and Threshold explain probability-based alerts (per-symbol log
	// probability); both are zero for OutOfContext alerts.
	Score     float64
	Threshold float64
	// Window is the flagged call sequence.
	Window []string
	// Origins links a DL alert to the queries whose data leaked — the
	// "connected to source" property of Table V.
	Origins []interp.Origin
}

// Engine performs streaming detection for one monitored execution.
type Engine struct {
	p         *profile.Profile
	threshold float64
	window    []collector.Call
	seq       int
	alerts    []Alert

	// Adaptive-threshold state (see adaptive.go).
	oocAllowed  map[[2]string]bool
	adaptRate   float64
	adaptMargin float64
}

// NewEngine builds an engine around a trained profile, using the profile's
// selected threshold.
func NewEngine(p *profile.Profile) *Engine {
	return &Engine{p: p, threshold: p.Threshold}
}

// SetThreshold overrides the profile's threshold (experiment sweeps and the
// adaptive-threshold mode use this).
func (e *Engine) SetThreshold(t float64) { e.threshold = t }

// ResetWindow clears the sliding window between monitored executions, so a
// window never straddles two program runs. Alert history is preserved.
func (e *Engine) ResetWindow() { e.window = nil }

// Threshold returns the active threshold.
func (e *Engine) Threshold() float64 { return e.threshold }

// Observe processes one call and returns any alerts it raised.
func (e *Engine) Observe(c collector.Call) []Alert {
	var out []Alert
	seq := e.seq
	e.seq++

	// Out-of-context: a known label from an unexpected caller (unless the
	// administrator whitelisted the pair).
	if e.p.KnownLabel(c.Label) && !e.p.KnownCaller(c.Label, c.Caller) &&
		!e.oocAllowed[[2]string{c.Label, c.Caller}] {
		out = append(out, Alert{
			Flag:   FlagOutOfContext,
			Seq:    seq,
			Label:  c.Label,
			Caller: c.Caller,
		})
	}

	// Maintain the sliding n-window and score it once full.
	e.window = append(e.window, c)
	if len(e.window) > e.p.WindowLen {
		e.window = e.window[1:]
	}
	if len(e.window) == e.p.WindowLen {
		if a, flagged := e.judgeWindow(seq); flagged {
			out = append(out, a)
		}
	}

	e.alerts = append(e.alerts, out...)
	return out
}

// Flush evaluates a final short window (a trace shorter than n) and returns
// the engine's full alert history.
func (e *Engine) Flush() []Alert {
	if len(e.window) > 0 && len(e.window) < e.p.WindowLen {
		if a, flagged := e.judgeWindow(e.seq - 1); flagged {
			e.alerts = append(e.alerts, a)
		}
	}
	return e.alerts
}

// Alerts returns the alerts raised so far.
func (e *Engine) Alerts() []Alert { return e.alerts }

// Hook adapts the engine to an interpreter hook for inline monitoring.
func (e *Engine) Hook() interp.Hook {
	return func(ev *interp.Event) {
		e.Observe(collector.Call{
			Label:   ev.Label,
			Name:    ev.Name,
			Caller:  ev.Caller,
			Block:   ev.Block,
			Origins: ev.Origins,
		})
	}
}

func (e *Engine) judgeWindow(seq int) (Alert, bool) {
	labels := make([]string, len(e.window))
	for i, c := range e.window {
		labels[i] = c.Label
	}
	score := e.p.Score(labels)
	if score >= e.threshold {
		e.adapt(score)
		return Alert{}, false
	}
	a := Alert{
		Flag:      FlagAnomalous,
		Seq:       seq,
		Label:     e.window[len(e.window)-1].Label,
		Caller:    e.window[len(e.window)-1].Caller,
		Score:     score,
		Threshold: e.threshold,
		Window:    labels,
	}
	// DL when the window contains an output of targeted data; the origins of
	// the leaked values are attached once each.
	seen := map[interp.Origin]bool{}
	for _, c := range e.window {
		if len(c.Origins) > 0 || e.p.LeakLabels[c.Label] {
			a.Flag = FlagDL
			for _, o := range c.Origins {
				if !seen[o] {
					seen[o] = true
					a.Origins = append(a.Origins, o)
				}
			}
		}
	}
	return a, true
}

// Classify scores one label window against a profile and threshold: the
// batch form used by the accuracy experiments (the callers and origins of
// synthetic sequences are unknown, so only Normal/Anomalous/DL apply).
func Classify(p *profile.Profile, threshold float64, window []string) (Flag, float64) {
	score := p.Score(window)
	if score >= threshold {
		return FlagNormal, score
	}
	for _, l := range window {
		if p.LeakLabels[l] {
			return FlagDL, score
		}
	}
	return FlagAnomalous, score
}
