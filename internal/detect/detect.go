// Package detect implements AD-PROM's Detection Engine (paper §IV-B4,
// §IV-D): it receives n-length call sequences from the Calls Collector,
// scores them against the trained profile, and flags anomalies to the
// security administrator.
//
// Alerts carry the paper's four flags: Normal, Anomalous (a low-probability
// window with no TD output), DL (a low-probability window containing an
// output of targeted data — connected to its source query origins), and
// OutOfContext (a legitimate library call issued from a function that never
// issues it).
package detect

import (
	"encoding/json"
	"fmt"

	"adprom/internal/collector"
	"adprom/internal/hmm"
	"adprom/internal/interp"
	"adprom/internal/profile"
	"adprom/internal/sqlchan"
)

// Flag classifies an observation.
type Flag int

// The paper's alert taxonomy (§V-C).
const (
	FlagNormal Flag = iota
	FlagAnomalous
	FlagDL
	FlagOutOfContext
)

func (f Flag) String() string {
	switch f {
	case FlagNormal:
		return "Normal"
	case FlagAnomalous:
		return "Anomalous"
	case FlagDL:
		return "DL"
	case FlagOutOfContext:
		return "OutOfContext"
	default:
		return fmt.Sprintf("Flag(%d)", int(f))
	}
}

// MarshalJSON serialises the flag as its name ("DL", "Anomalous", …) so
// alert sinks and logs stay readable; unknown values fall back to the
// numeric form Flag(n).
func (f Flag) MarshalJSON() ([]byte, error) {
	return json.Marshal(f.String())
}

// UnmarshalJSON accepts both the name form produced by MarshalJSON and the
// bare integers older sinks wrote.
func (f *Flag) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		switch name {
		case "Normal":
			*f = FlagNormal
		case "Anomalous":
			*f = FlagAnomalous
		case "DL":
			*f = FlagDL
		case "OutOfContext":
			*f = FlagOutOfContext
		default:
			var n int
			if _, err := fmt.Sscanf(name, "Flag(%d)", &n); err != nil {
				return fmt.Errorf("detect: unknown flag %q", name)
			}
			*f = Flag(n)
		}
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("detect: flag must be a name or integer: %s", data)
	}
	*f = Flag(n)
	return nil
}

// Alert is one detection-engine finding.
type Alert struct {
	Flag Flag
	// Seq is the index of the triggering call in the monitored stream.
	Seq int
	// Label and Caller identify the triggering call.
	Label  string
	Caller string
	// Score and Threshold explain probability-based alerts (per-symbol log
	// probability); both are zero for OutOfContext alerts.
	Score     float64
	Threshold float64
	// ScoreErrorBound bounds |Score − exact score| when the engine runs an
	// approximate scorer mode (hmm.ScorerTopK), on the same per-symbol scale
	// as Score. It is 0 in exact mode and +Inf when the pruned window lost
	// all probability mass (the bound is vacuous but Score < threshold still
	// holds exactly).
	ScoreErrorBound float64 `json:",omitempty"`
	// Window is the flagged call sequence — call labels for HMM-window and
	// OutOfContext alerts, query signatures for SQL-channel alerts.
	Window []string
	// Origins links a DL alert to the queries whose data leaked — the
	// "connected to source" property of Table V.
	Origins []interp.Origin

	// Channels names every detection channel whose rule this alert crossed
	// (ChannelHMM, ChannelSQL, ChannelFused). It is nil on engines running
	// without an SQL channel, where the HMM is the only judge.
	Channels []string `json:",omitempty"`
	// SQLScore and SQLThreshold carry the SQL channel's most recent
	// query-window judgement (per-query log-likelihood) at alert time; both
	// are zero without an SQL channel or before its first judged window.
	SQLScore     float64 `json:",omitempty"`
	SQLThreshold float64 `json:",omitempty"`
	// FusedScore is the weighted fused anomaly margin at judgement time,
	// recorded once both channels have judged at least one window.
	FusedScore float64 `json:",omitempty"`
}

// Engine performs streaming detection for one monitored execution. Window
// scoring is incremental: the engine owns a hmm.StreamScorer that maintains
// the forward variables of every in-flight window over the profile's shared
// read-only scoring view, so observing a call never recomputes the whole
// window from scratch and never allocates.
type Engine struct {
	p         *profile.Profile
	threshold float64
	winLen    int
	mode      hmm.ScorerMode
	stream    *hmm.StreamScorer
	window    []collector.Call
	winStart  int // ring start within window when full
	seq       int
	alerts    []Alert

	// ObserveBatch scratch, reused across batches (never retained by alerts).
	syms       []int
	scores     []float64
	bounds     []float64
	winScratch []collector.Call

	// Append-only arenas flagged windows carve their Window labels and leak
	// Origins from, so a batch with many alerts costs a few arena-growth
	// allocations instead of a few per alert. Exhausted arenas are abandoned
	// (their carved regions stay alive through the alerts) and replaced.
	labelArena  []string
	originArena []interp.Origin

	// Adaptive-threshold state (see adaptive.go).
	oocAllowed  map[[2]string]bool
	adaptRate   float64
	adaptMargin float64

	// Judge hook (fault injection / external policy) and its sticky error,
	// plus the tracing layer's pure-observation judgement hook.
	judgeHook JudgeFunc
	traceHook TraceFunc
	tsum      TraceSummary
	err       error

	// Sensitive-touch tracking for the risk-aware shedding tier: sensitive
	// counts the calls seen so far that output targeted data (leak origins or
	// a profile leak label) or carry a label the administrator marked
	// sensitive (e.g. derived from query signatures touching protected
	// tables via qsig.SensitiveLabels).
	sensitive       int
	sensitiveLabels map[string]bool

	// Second-channel state (see fusion.go). Every branch below is gated on
	// sqlScorer != nil, so an engine without an SQL channel executes exactly
	// the single-channel code path — the disabled-channel bit-identity the
	// property tests pin down.
	sqlScorer *sqlchan.Scorer
	fusion    FusionConfig
	// Latest per-channel anomaly margins (threshold − score) and whether
	// each channel has judged a window since the last window reset.
	lastHMM, lastSQL float64
	hmmSeen, sqlSeen bool
	// Latest SQL-channel verdict, stamped onto alerts for provenance.
	lastSQLScore, lastSQLThreshold float64
	// The most recent query-bearing call, so a Flush-judged partial SQL
	// window can still name a triggering call.
	lastQuery collector.Call
}

// TraceEvent describes one completed-window judgement to the tracing layer:
// which channel judged, what it computed, and the fusion state at judgement
// time. Unlike JudgeFunc (policy seam) it is a pure observation — a trace
// hook cannot fail the engine.
type TraceEvent struct {
	// Channel is ChannelHMM or ChannelSQL.
	Channel string
	// Seq is the index of the window's last call in the monitored stream.
	Seq int
	// Score, Threshold, and Bound are the judging channel's window score,
	// active threshold, and score-error bound (0 outside top-K HMM scoring).
	Score     float64
	Threshold float64
	Bound     float64
	// HMMMargin and SQLMargin are the latest per-channel anomaly margins
	// (threshold − score); the Seen flags report whether the channel has
	// judged a window since the last window reset.
	HMMMargin float64
	SQLMargin float64
	HMMSeen   bool
	SQLSeen   bool
	// Fused is the weighted fused margin; FusedFired whether the escalation
	// rule crossed. Both zero/false on single-channel engines.
	Fused      float64
	FusedFired bool
	// Flagged reports whether this judgement raised an alert.
	Flagged bool
}

// TraceFunc observes flagged channel judgements for the tracing layer.
// Healthy judgements never reach the hook: they fold into the engine's
// TraceSummary instead, so tracing a batch of normal traffic costs a few
// scalar stores per window rather than an event construction and call each.
type TraceFunc func(TraceEvent)

// SetTraceHook installs h, invoked once per flagged channel judgement; pass
// nil to remove it. Like the judge hook this is owner configuration, cleared
// by Reset and not carried by Adopt.
func (e *Engine) SetTraceHook(h TraceFunc) { e.traceHook = h }

// TraceSummary aggregates every window judged since the last
// TakeTraceSummary — the tracing layer's bounded per-op score-span summary.
// Per channel it keeps the most recent judgement (score against threshold,
// and for the HMM the pruning error bound).
type TraceSummary struct {
	Windows                          int
	HMMScore, HMMThreshold, HMMBound float64
	HMMSeen                          bool
	SQLScore, SQLThreshold           float64
	SQLSeen                          bool
}

// TakeTraceSummary returns the aggregate since the previous call and resets
// it. Only populated while a trace hook is installed.
func (e *Engine) TakeTraceSummary() TraceSummary {
	s := e.tsum
	e.tsum = TraceSummary{}
	return s
}

// traceJudgement folds one window judgement into the trace summary and, for
// flagged windows only, emits a full TraceEvent to the hook.
func (e *Engine) traceJudgement(channel string, seq int, score, threshold, bound, fused float64, fusedFired, flagged bool) {
	if e.traceHook == nil {
		return
	}
	e.tsum.Windows++
	switch channel {
	case ChannelHMM:
		e.tsum.HMMScore, e.tsum.HMMThreshold, e.tsum.HMMBound = score, threshold, bound
		e.tsum.HMMSeen = true
	case ChannelSQL:
		e.tsum.SQLScore, e.tsum.SQLThreshold = score, threshold
		e.tsum.SQLSeen = true
	}
	if !flagged {
		return
	}
	hmmMargin := e.lastHMM
	if e.sqlScorer == nil && channel == ChannelHMM {
		// Single-channel engines never fold margins into fusion state; derive
		// the HMM margin directly so the event still explains the verdict.
		hmmMargin = threshold - score
	}
	e.traceHook(TraceEvent{
		Channel: channel, Seq: seq,
		Score: score, Threshold: threshold, Bound: bound,
		HMMMargin: hmmMargin, SQLMargin: e.lastSQL,
		HMMSeen: e.hmmSeen, SQLSeen: e.sqlSeen,
		Fused: fused, FusedFired: fusedFired, Flagged: flagged,
	})
}

// JudgeFunc observes every completed-window judgement: the index of the
// window's last call, its per-symbol score, and whether it was flagged. A
// non-nil return poisons the engine — Err reports it and callers such as the
// concurrent runtime quarantine the stream — which gives fault-injection
// harnesses and external circuit breakers an error-propagating seam into the
// hot path. A JudgeFunc that panics is indistinguishable from any other
// engine panic to the caller.
type JudgeFunc func(seq int, score float64, flagged bool) error

// NewEngine builds an engine around a trained profile, using the profile's
// selected threshold and window length.
func NewEngine(p *profile.Profile) *Engine {
	return &Engine{p: p, threshold: p.Threshold, winLen: p.WindowLen}
}

// SetThreshold overrides the profile's threshold (experiment sweeps and the
// adaptive-threshold mode use this).
func (e *Engine) SetThreshold(t float64) { e.threshold = t }

// SetWindowLen overrides the profile's window length for this engine. It
// resets the current window; call it before observing.
func (e *Engine) SetWindowLen(n int) {
	if n > 0 && n != e.winLen {
		e.winLen = n
		e.stream = nil
	}
	e.ResetWindow()
}

// WindowLen returns the engine's active window length.
func (e *Engine) WindowLen() int { return e.winLen }

// SetScorerMode selects the scoring kernel (hmm.ScorerExact or
// hmm.ScorerTopK) for subsequent windows. Like SetWindowLen it resets the
// current window, so call it before observing. The mode, like the window
// length, survives Reset.
func (e *Engine) SetScorerMode(m hmm.ScorerMode) {
	if m != e.mode {
		e.mode = m
		e.stream = nil
	}
	e.ResetWindow()
}

// ScorerMode returns the engine's active scoring kernel mode.
func (e *Engine) ScorerMode() hmm.ScorerMode { return e.mode }

// SetSQLChannel attaches a second detection channel — a per-session SQL
// behaviour scorer — judged alongside the HMM under cfg's fusion rule; pass a
// nil scorer to detach it. Like the judge hook this is owner configuration,
// cleared by Reset and not carried by Adopt. The scorer is owned by the
// engine from here on: ResetWindow resets it at trace boundaries.
func (e *Engine) SetSQLChannel(s *sqlchan.Scorer, cfg FusionConfig) {
	e.sqlScorer = s
	e.fusion = cfg.withDefaults()
	e.hmmSeen, e.sqlSeen = false, false
	e.lastHMM, e.lastSQL = 0, 0
	e.lastSQLScore, e.lastSQLThreshold = 0, 0
	e.lastQuery = collector.Call{}
}

// SQLChannel returns the attached SQL-channel scorer, nil when detached.
func (e *Engine) SQLChannel() *sqlchan.Scorer { return e.sqlScorer }

// ResetWindow clears the sliding window between monitored executions, so a
// window never straddles two program runs. Alert history is preserved.
func (e *Engine) ResetWindow() {
	e.window = e.window[:0]
	e.winStart = 0
	if e.stream != nil {
		e.stream.Reset()
	}
	if e.sqlScorer != nil {
		e.sqlScorer.Reset()
		e.hmmSeen, e.sqlSeen = false, false
		e.lastHMM, e.lastSQL = 0, 0
	}
}

// Reset returns the engine to its just-constructed state — window, sequence
// counter, alert history, threshold, judge hook, and error — so pooled
// engines can be recycled across sessions without reallocating their
// forward-variable buffers.
func (e *Engine) Reset() {
	e.ResetWindow()
	e.seq = 0
	e.alerts = nil
	e.labelArena, e.originArena = nil, nil
	e.threshold = e.p.Threshold
	e.oocAllowed = nil
	e.adaptRate, e.adaptMargin = 0, 0
	e.judgeHook = nil
	e.traceHook = nil
	e.tsum = TraceSummary{}
	e.err = nil
	e.sensitive = 0
	e.sensitiveLabels = nil
	e.sqlScorer = nil
	e.fusion = FusionConfig{}
	e.lastHMM, e.lastSQL = 0, 0
	e.hmmSeen, e.sqlSeen = false, false
	e.lastSQLScore, e.lastSQLThreshold = 0, 0
	e.lastQuery = collector.Call{}
}

// SetSensitiveLabels installs extra call labels counted as sensitive touches
// beyond the profile's leak labels; pass nil to remove them. Like the judge
// hook this is owner configuration, cleared by Reset and not carried by
// Adopt. The map is read, never written.
func (e *Engine) SetSensitiveLabels(labels map[string]bool) { e.sensitiveLabels = labels }

// SensitiveTouches returns the cumulative count of observed calls that touch
// sensitive data: calls carrying leak origins, calls whose label is a profile
// leak label, and calls whose label the administrator marked sensitive. The
// counter survives window resets and is carried across engine replacement by
// Adopt, so a stream owner can read deltas to drive per-session risk.
func (e *Engine) SensitiveTouches() int { return e.sensitive }

// noteSensitive folds one observed call into the sensitive-touch counter.
func (e *Engine) noteSensitive(c *collector.Call) {
	if len(c.Origins) > 0 || e.p.LeakLabels[c.Label] || e.sensitiveLabels[c.Label] {
		e.sensitive++
	}
}

// SetJudgeHook installs h, which observes every subsequent completed-window
// judgement; pass nil to remove it. See JudgeFunc for the error semantics.
func (e *Engine) SetJudgeHook(h JudgeFunc) { e.judgeHook = h }

// Adopt carries prev's alert history and sequence counter into e, so that a
// stream owner replacing its engine at a trace boundary (the runtime's
// profile hot-swap upgrades sessions to the new generation when their window
// resets) presents one continuous history across the replacement. Window
// state is deliberately not carried — Adopt is only correct at a boundary
// where the window is empty — and neither are the adaptive-threshold
// whitelist or the judge hook, which the new owner reconfigures.
func (e *Engine) Adopt(prev *Engine) {
	if prev == nil {
		return
	}
	e.seq = prev.seq
	e.alerts = prev.alerts
	e.sensitive = prev.sensitive
}

// Err reports the first error returned by the engine's judge hook, nil while
// healthy. Once non-nil the engine still scores windows, but stream owners
// should treat the engine as failed.
func (e *Engine) Err() error { return e.err }

// Threshold returns the active threshold.
func (e *Engine) Threshold() float64 { return e.threshold }

// Profile returns the profile the engine detects against.
func (e *Engine) Profile() *profile.Profile { return e.p }

// Observe processes one call and returns any alerts it raised.
func (e *Engine) Observe(c collector.Call) []Alert {
	var out []Alert
	seq := e.seq
	e.seq++
	e.noteSensitive(&c)

	// Out-of-context: a known label from an unexpected caller (unless the
	// administrator whitelisted the pair).
	if e.p.KnownLabel(c.Label) && !e.p.KnownCaller(c.Label, c.Caller) &&
		!e.oocAllowed[[2]string{c.Label, c.Caller}] {
		out = append(out, Alert{
			Flag:   FlagOutOfContext,
			Seq:    seq,
			Label:  c.Label,
			Caller: c.Caller,
		})
	}

	// Fold the call into the incremental scorer and the (ring-buffered)
	// window of pending calls; judge the window the moment it completes.
	if e.winLen > 0 {
		if e.stream == nil {
			e.stream = e.p.NewStreamScorerMode(e.winLen, e.mode)
		}
		if len(e.window) < e.winLen {
			e.window = append(e.window, c)
		} else {
			e.window[e.winStart] = c
			e.winStart = (e.winStart + 1) % e.winLen
		}
		if logp, done := e.stream.Push(e.p.SymbolOf(c.Label)); done {
			w := float64(e.winLen)
			if a, flagged := e.judgeWindow(seq, logp/w, e.stream.LastBound()/w); flagged {
				out = append(out, a)
			}
		}
	}

	// Second channel: fold query-bearing calls into the SQL scorer and judge
	// its window when it completes, after the HMM judgement for this call —
	// the same per-call order ObserveBatch replays.
	if e.sqlScorer != nil && c.SQL != "" {
		e.lastQuery = c
		if v, done := e.sqlScorer.Observe(c.SQL, c.Rows); done {
			if a, flagged := e.judgeSQLWindow(seq, &c, v); flagged {
				out = append(out, a)
			}
		}
	}

	e.alerts = append(e.alerts, out...)
	return out
}

// ObserveBatch processes a run of calls from one stream in a single pass and
// returns the alerts they raised. It is equivalent to calling Observe on
// each call in order — same alerts, same scores bit for bit, same judge-hook
// invocations — but folds the whole run into the incremental scorer with one
// batched push and defers the window ring update to the end of the batch, so
// the per-call dispatch and bookkeeping cost is amortised across the batch.
// The calls slice is not retained; the Call values (and their Origins) are.
func (e *Engine) ObserveBatch(calls []collector.Call) []Alert {
	if len(calls) == 0 {
		return nil
	}
	baseSeq := e.seq
	e.seq += len(calls)
	// Alerts are appended straight into the history and the batch's run of it
	// returned, so raising many alerts costs amortised history growth instead
	// of a second slice.
	histStart := len(e.alerts)

	// Score the whole run first: completions are the trailing entries, and
	// judging happens in call order below, interleaved with the OOC checks
	// exactly as the per-call path would.
	completedFrom := len(calls)
	if e.winLen > 0 {
		if e.stream == nil {
			e.stream = e.p.NewStreamScorerMode(e.winLen, e.mode)
		}
		e.growScratch(len(calls))
		for i := range calls {
			e.syms[i] = e.p.SymbolOf(calls[i].Label)
		}
		completedFrom = len(calls) - e.stream.PushBatch(e.syms, e.scores, e.bounds)
	}

	prevLen := len(e.window)
	w := float64(e.winLen)
	for i := range calls {
		c := &calls[i]
		e.noteSensitive(c)
		if e.p.KnownLabel(c.Label) && !e.p.KnownCaller(c.Label, c.Caller) &&
			!e.oocAllowed[[2]string{c.Label, c.Caller}] {
			e.alerts = append(e.alerts, Alert{
				Flag:   FlagOutOfContext,
				Seq:    baseSeq + i,
				Label:  c.Label,
				Caller: c.Caller,
			})
		}
		if i >= completedFrom {
			if a, flagged := e.judgeBatchWindow(baseSeq+i, e.scores[i]/w, e.bounds[i]/w, calls, i, prevLen); flagged {
				e.alerts = append(e.alerts, a)
			}
		}
		if e.sqlScorer != nil && c.SQL != "" {
			e.lastQuery = *c
			if v, done := e.sqlScorer.Observe(c.SQL, c.Rows); done {
				if a, flagged := e.judgeSQLWindow(baseSeq+i, c, v); flagged {
					e.alerts = append(e.alerts, a)
				}
			}
		}
	}

	// Rebuild the ring to hold the last winLen calls, oldest first.
	if e.winLen > 0 {
		total := prevLen + len(calls)
		newLen := e.winLen
		if total < newLen {
			newLen = total
		}
		fromBatch := len(calls)
		if fromBatch > newLen {
			fromBatch = newLen
		}
		fromRing := newLen - fromBatch
		if fromRing > 0 {
			e.winScratch = e.winScratch[:0]
			for t := prevLen - fromRing; t < prevLen; t++ {
				e.winScratch = append(e.winScratch, e.window[(e.winStart+t)%prevLen])
			}
		}
		e.window = e.window[:0]
		e.window = append(e.window, e.winScratch[:fromRing]...)
		e.window = append(e.window, calls[len(calls)-fromBatch:]...)
		e.winStart = 0
	}

	if len(e.alerts) == histStart {
		return nil
	}
	return e.alerts[histStart:len(e.alerts):len(e.alerts)]
}

// growScratch sizes the batch scratch slices for n calls without reallocating
// on repeat batches.
func (e *Engine) growScratch(n int) {
	if cap(e.syms) < n {
		e.syms = make([]int, n)
		e.scores = make([]float64, n)
		e.bounds = make([]float64, n)
	}
	e.syms = e.syms[:n]
	e.scores = e.scores[:n]
	e.bounds = e.bounds[:n]
}

// Flush evaluates a final short window (a trace shorter than n) and returns
// the engine's full alert history.
func (e *Engine) Flush() []Alert {
	if logp, n := partialScore(e.stream); n > 0 && n == len(e.window) {
		if a, flagged := e.judgeWindow(e.seq-1, logp/float64(n), e.stream.PartialBound()/float64(n)); flagged {
			e.alerts = append(e.alerts, a)
		}
	}
	// The SQL channel judges its partial window too: application runs issue
	// few queries, so the short-trace flush is where most of its detections
	// happen.
	if e.sqlScorer != nil {
		if v, done := e.sqlScorer.Flush(); done {
			last := e.lastQuery
			if a, flagged := e.judgeSQLWindow(e.seq-1, &last, v); flagged {
				e.alerts = append(e.alerts, a)
			}
		}
	}
	return e.alerts
}

func partialScore(st *hmm.StreamScorer) (float64, int) {
	if st == nil {
		return 0, 0
	}
	return st.Partial()
}

// Alerts returns the alerts raised so far.
func (e *Engine) Alerts() []Alert { return e.alerts }

// Hook adapts the engine to an interpreter hook for inline monitoring.
func (e *Engine) Hook() interp.Hook {
	return func(ev *interp.Event) {
		e.Observe(collector.Call{
			Label:   ev.Label,
			Name:    ev.Name,
			Caller:  ev.Caller,
			Block:   ev.Block,
			Origins: ev.Origins,
			SQL:     ev.SQL,
			Rows:    ev.Rows,
		})
	}
}

// judgeWindow classifies the current window given its per-symbol score and
// error bound (from the incremental scorer). The window of pending calls is
// a ring: index winStart is the oldest call once the ring is full.
func (e *Engine) judgeWindow(seq int, score, bound float64) (Alert, bool) {
	fusedFired, fused := e.noteHMM(score)
	if score >= e.threshold && !fusedFired {
		e.adapt(score)
		e.traceJudgement(ChannelHMM, seq, score, e.threshold, bound, fused, false, false)
		e.runJudgeHook(seq, score, false)
		return Alert{}, false
	}
	n := len(e.window)
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		labels[i] = e.window[(e.winStart+i)%n].Label
	}
	last := &e.window[(e.winStart+n-1)%n]
	a := Alert{
		Flag:            FlagAnomalous,
		Seq:             seq,
		Label:           last.Label,
		Caller:          last.Caller,
		Score:           score,
		Threshold:       e.threshold,
		ScoreErrorBound: bound,
		Window:          labels,
	}
	for i := 0; i < n; i++ {
		e.attachLeak(&a, &e.window[(e.winStart+i)%n])
	}
	e.stampChannels(&a, score, fused, fusedFired)
	e.traceJudgement(ChannelHMM, seq, score, e.threshold, bound, fused, fusedFired, true)
	e.runJudgeHook(seq, score, true)
	return a, true
}

// judgeBatchWindow is judgeWindow for a window completed inside an
// ObserveBatch run: the window's calls are the last fromBatch = min(i+1, w)
// entries of calls[:i+1] preceded by the trailing w−fromBatch calls of the
// frozen pre-batch ring (length prevLen). Flagged windows carve their label
// copies and leak origins from the engine's arenas instead of allocating
// slices each.
func (e *Engine) judgeBatchWindow(seq int, score, bound float64, calls []collector.Call, i, prevLen int) (Alert, bool) {
	fusedFired, fused := e.noteHMM(score)
	if score >= e.threshold && !fusedFired {
		e.adapt(score)
		e.traceJudgement(ChannelHMM, seq, score, e.threshold, bound, fused, false, false)
		e.runJudgeHook(seq, score, false)
		return Alert{}, false
	}
	w := e.winLen
	fromBatch := i + 1
	if fromBatch > w {
		fromBatch = w
	}
	fromRing := w - fromBatch
	if cap(e.labelArena)-len(e.labelArena) < w {
		c := 2 * cap(e.labelArena)
		if c < 64*w {
			c = 64 * w
		}
		e.labelArena = make([]string, 0, c)
	}
	start := len(e.labelArena)
	for t := prevLen - fromRing; t < prevLen; t++ {
		e.labelArena = append(e.labelArena, e.window[(e.winStart+t)%prevLen].Label)
	}
	for t := i + 1 - fromBatch; t <= i; t++ {
		e.labelArena = append(e.labelArena, calls[t].Label)
	}
	a := Alert{
		Flag:            FlagAnomalous,
		Seq:             seq,
		Label:           calls[i].Label,
		Caller:          calls[i].Caller,
		Score:           score,
		Threshold:       e.threshold,
		ScoreErrorBound: bound,
		Window:          e.labelArena[start : start+w : start+w],
	}

	// Upper-bound the window's origin demand so the arena never regrows (and
	// so copies) mid-window; an exhausted arena is abandoned, not copied.
	need := 0
	for t := prevLen - fromRing; t < prevLen; t++ {
		need += len(e.window[(e.winStart+t)%prevLen].Origins)
	}
	for t := i + 1 - fromBatch; t <= i; t++ {
		need += len(calls[t].Origins)
	}
	if need > 0 {
		if cap(e.originArena)-len(e.originArena) < need {
			c := 2 * cap(e.originArena)
			if c < 4*need {
				c = 4 * need
			}
			e.originArena = make([]interp.Origin, 0, c)
		}
		ostart := len(e.originArena)
		a.Origins = e.originArena[ostart:ostart:cap(e.originArena)]
	}
	for t := prevLen - fromRing; t < prevLen; t++ {
		e.attachLeak(&a, &e.window[(e.winStart+t)%prevLen])
	}
	for t := i + 1 - fromBatch; t <= i; t++ {
		e.attachLeak(&a, &calls[t])
	}
	if len(a.Origins) == 0 {
		a.Origins = nil
	} else {
		e.originArena = e.originArena[:len(e.originArena)+len(a.Origins)]
		a.Origins = a.Origins[:len(a.Origins):len(a.Origins)]
	}
	e.stampChannels(&a, score, fused, fusedFired)
	e.traceJudgement(ChannelHMM, seq, score, e.threshold, bound, fused, fusedFired, true)
	e.runJudgeHook(seq, score, true)
	return a, true
}

// attachLeak upgrades an alert to DL when the window call c outputs targeted
// data, attaching the origins of the leaked values once each, in call order.
// Windows are short and origins few, so dedup is a linear scan of what is
// already attached rather than a map.
func (e *Engine) attachLeak(a *Alert, c *collector.Call) {
	if len(c.Origins) == 0 && !e.p.LeakLabels[c.Label] {
		return
	}
	a.Flag = FlagDL
outer:
	for _, o := range c.Origins {
		for _, have := range a.Origins {
			if have == o {
				continue outer
			}
		}
		a.Origins = append(a.Origins, o)
	}
}

// runJudgeHook invokes the judge hook, capturing its first error; a panic
// propagates to the caller of Observe/Flush.
func (e *Engine) runJudgeHook(seq int, score float64, flagged bool) {
	if e.judgeHook == nil || e.err != nil {
		return
	}
	if err := e.judgeHook(seq, score, flagged); err != nil {
		e.err = err
	}
}

// Classify scores one label window against a profile and threshold: the
// batch form used by the accuracy experiments (the callers and origins of
// synthetic sequences are unknown, so only Normal/Anomalous/DL apply).
func Classify(p *profile.Profile, threshold float64, window []string) (Flag, float64) {
	score := p.Score(window)
	if score >= threshold {
		return FlagNormal, score
	}
	for _, l := range window {
		if p.LeakLabels[l] {
			return FlagDL, score
		}
	}
	return FlagAnomalous, score
}
