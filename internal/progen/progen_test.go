package progen

import (
	"fmt"
	"strconv"
	"testing"

	"adprom/internal/interp"
	"adprom/internal/ir"
	"adprom/internal/minidb"
)

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7, Functions: 10})
	b := Generate(Config{Seed: 7, Functions: 10})
	if ir.Dump(a) != ir.Dump(b) {
		t.Fatal("same seed produced different programs")
	}
	c := Generate(Config{Seed: 8, Functions: 10})
	if ir.Dump(a) == ir.Dump(c) {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsValidate(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := Generate(Config{Seed: seed, Functions: 6, AllowRecursion: seed%2 == 0})
		if err := ir.Validate(p); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestGeneratedProgramsExecute(t *testing.T) {
	db := minidb.New()
	db.MustExec("CREATE TABLE docs (id INT, body TEXT)")
	for i := 0; i < 10; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO docs VALUES (%d, 'line%d')", i, i))
	}

	for seed := int64(0); seed < 15; seed++ {
		p := Generate(Config{
			Seed:           seed,
			Functions:      8,
			UseDB:          seed%3 == 0,
			Tables:         []string{"docs"},
			AllowRecursion: seed%4 == 0,
		})
		for tc := 0; tc < 5; tc++ {
			world := interp.NewWorld(db)
			ip := interp.New(p, world, interp.Options{})
			calls := 0
			ip.AddHook(func(*interp.Event) { calls++ })
			input := []string{
				strconv.Itoa(tc * 3),
				strconv.Itoa(tc*5 + 1),
				strconv.Itoa(tc),
			}
			if _, err := ip.Run(input...); err != nil {
				t.Fatalf("seed %d input %v: %v", seed, input, err)
			}
			if calls == 0 {
				t.Errorf("seed %d input %v: no calls emitted", seed, input)
			}
		}
	}
}

// TestInputsChangeTraces checks that the generated branches actually depend
// on the test case, which the training corpus requires for path coverage.
func TestInputsChangeTraces(t *testing.T) {
	p := Generate(Config{Seed: 42, Functions: 8})
	trace := func(input ...string) string {
		ip := interp.New(p, interp.NewWorld(nil), interp.Options{})
		var s string
		ip.AddHook(func(e *interp.Event) { s += e.Label + ";" })
		if _, err := ip.Run(input...); err != nil {
			t.Fatal(err)
		}
		return s
	}
	distinct := map[string]bool{}
	for tc := 0; tc < 10; tc++ {
		distinct[trace(strconv.Itoa(tc), strconv.Itoa(tc*7), strconv.Itoa(tc*13))] = true
	}
	if len(distinct) < 3 {
		t.Errorf("10 test cases produced only %d distinct traces", len(distinct))
	}
}

func TestDBModeProducesLabelledOutputs(t *testing.T) {
	db := minidb.New()
	db.MustExec("CREATE TABLE docs (id INT, body TEXT)")
	for i := 0; i < 10; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO docs VALUES (%d, 'b%d')", i, i))
	}
	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		p := Generate(Config{Seed: seed, Functions: 6, UseDB: true, Tables: []string{"docs"}})
		for tc := 0; tc < 8 && !found; tc++ {
			ip := interp.New(p, interp.NewWorld(db), interp.Options{})
			ip.AddHook(func(e *interp.Event) {
				if e.Name == "printf" && e.Label != "printf" {
					found = true
				}
			})
			if _, err := ip.Run(strconv.Itoa(tc), strconv.Itoa(tc+1), strconv.Itoa(tc+2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !found {
		t.Error("DB mode never produced a _Q-labelled output call")
	}
}

func TestScaleToManyCallSites(t *testing.T) {
	p := Generate(Config{Seed: 1, Functions: 120, ConstructsPerFunc: 6})
	sites := len(ir.ProgramCallSites(p))
	if sites < 500 {
		t.Errorf("large config produced only %d call sites", sites)
	}
}
