// Package progen deterministically generates structured, executable IR
// programs.
//
// The paper's scalability evaluation runs AD-PROM over the SIR corpus
// (grep, gzip, sed, bash) — real C programs with hundreds of functions and,
// for bash, more than 900 distinct call sites. Those binaries are not
// available to this reproduction, so progen synthesises programs with the
// same structural properties: deep call graphs, branches whose direction
// depends on the test-case input, bounded loops, and a realistic library
// vocabulary. Programs are generated from a seed, so every experiment is
// repeatable bit-for-bit.
//
// Generated programs always terminate: loops iterate input-derived bounded
// counts, and the call graph is a DAG unless Config.AllowRecursion is set
// (which adds self-recursive helpers with decreasing counters).
package progen

import (
	"fmt"
	"math/rand"

	"adprom/internal/ir"
)

// Config controls generation.
type Config struct {
	// Name is the program name.
	Name string
	// Seed drives the deterministic RNG.
	Seed int64
	// Functions is the number of helper functions besides main.
	Functions int
	// MaxDepth bounds construct nesting (if/loop) per function.
	MaxDepth int
	// ConstructsPerFunc is the approximate number of top-level constructs in
	// each function body.
	ConstructsPerFunc int
	// Vocab is the library-call vocabulary to draw plain calls from. Names
	// unknown to the interpreter are fine — they execute as observable
	// no-ops, exactly like an uninstrumented libc call would look to the
	// collector.
	Vocab []string
	// Inputs is how many integer tokens main reads from the test case; they
	// seed every data-dependent branch and loop bound.
	Inputs int
	// UseDB adds database idioms (connect/query/iterate/print) so the
	// generated program has targeted data and _Q-labelled outputs.
	UseDB bool
	// Tables lists table names for DB idioms (required when UseDB).
	Tables []string
	// AllowRecursion adds self-recursive helpers with bounded depth.
	AllowRecursion bool
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = fmt.Sprintf("gen%d", c.Seed)
	}
	if c.Functions <= 0 {
		c.Functions = 8
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.ConstructsPerFunc <= 0 {
		c.ConstructsPerFunc = 4
	}
	if len(c.Vocab) == 0 {
		c.Vocab = []string{"strlen", "strcmp", "malloc", "free", "memcpy", "printf", "puts"}
	}
	if c.Inputs <= 0 {
		c.Inputs = 3
	}
	return c
}

// Generate builds a program from the configuration.
func Generate(cfg Config) *ir.Program {
	cfg = cfg.withDefaults()
	g := &gen{cfg: cfg, r: rand.New(rand.NewSource(cfg.Seed))}
	return g.program()
}

type gen struct {
	cfg         Config
	r           *rand.Rand
	b           *ir.Builder
	vseq        int
	mainCallees []string
	emitted     map[string]bool // callees emitted in the current function
}

func (g *gen) fresh(prefix string) string {
	g.vseq++
	return fmt.Sprintf("%s%d", prefix, g.vseq)
}

func (g *gen) program() *ir.Program {
	g.b = ir.NewBuilder(g.cfg.Name)

	// Helper functions f0..fN-1 form a layered call graph: fi in layer
	// i%callDepth may call only fj with j > i in the next layer. Layering
	// bounds dynamic call-tree depth, so execution cost stays linear in the
	// number of functions instead of exponential — real programs' call
	// graphs are deep but their dynamic activation counts are bounded, and
	// the generated corpus must terminate within the interpreter's budget.
	const callDepth = 4
	type helper struct {
		name string
		fb   *ir.FuncBuilder
	}
	helpers := make([]helper, g.cfg.Functions)
	for i := range helpers {
		helpers[i] = helper{name: fmt.Sprintf("f%d", i), fb: g.b.Func(fmt.Sprintf("f%d", i), "a", "b")}
	}

	calleeLists := make([][]string, len(helpers))
	hasCaller := make([]bool, len(helpers))
	for i := range helpers {
		for j := i + 1; j < len(helpers) && len(calleeLists[i]) < 2; j++ {
			if j%callDepth == i%callDepth+1 && g.r.Intn(3) == 0 {
				calleeLists[i] = append(calleeLists[i], helpers[j].name)
				hasCaller[j] = true
			}
		}
	}
	// Repair pass: every non-layer-0 function must have at least one caller,
	// or its call sites never reach the program CTM (and the paper's
	// evaluation counts them among the hidden states).
	for j := range helpers {
		if j%callDepth == 0 || hasCaller[j] {
			continue
		}
		for i := j - 1; i >= 0; i-- {
			if i%callDepth == j%callDepth-1 {
				calleeLists[i] = append(calleeLists[i], helpers[j].name)
				hasCaller[j] = true
				break
			}
		}
	}
	for i := range helpers {
		g.fillFunction(helpers[i].fb, calleeLists[i], i)
	}

	// main fans out to the layer-0 helpers (capped) so that most of the
	// program executes on every run while the total work stays bounded.
	for i := 0; i < len(helpers); i += callDepth {
		g.mainCallees = append(g.mainCallees, helpers[i].name)
	}

	if g.cfg.AllowRecursion {
		rec := g.b.Func("countdown", "n")
		entry := rec.Block()
		base := rec.Block()
		step := rec.Block()
		entry.If(ir.Le(ir.V("n"), ir.I(0)), base, step)
		base.RetVal(ir.I(0))
		step.Call("free", ir.I(0))
		step.InvokeTo("r", "countdown", ir.Sub(ir.V("n"), ir.I(1)))
		step.RetVal(ir.Add(ir.V("r"), ir.I(1)))
	}

	g.buildMain()
	return g.b.MustBuild()
}

// buildMain reads the input tokens and fans out to the helper chain.
func (g *gen) buildMain() {
	m := g.b.Func("main")
	cur := m.Block()
	for i := 0; i < g.cfg.Inputs; i++ {
		tok := g.fresh("tok")
		cur.CallTo(tok, "scanf", ir.S("%d"))
		cur.CallTo(fmt.Sprintf("v%d", i), "atoi", ir.V(tok))
	}
	if g.cfg.UseDB {
		cur.CallTo("conn", "PQconnectdb")
	}
	cur.Assign("acc", ir.I(0))
	for k, callee := range g.mainCallees {
		dst := fmt.Sprintf("r%d", k)
		first := fmt.Sprintf("v%d", k%g.cfg.Inputs)
		second := fmt.Sprintf("v%d", (k+1)%g.cfg.Inputs)
		if k < 3 {
			// The first few helpers always run, giving every trace a spine.
			cur.InvokeTo(dst, callee, ir.V(first), ir.V(second))
			cur.Assign("acc", ir.Add(ir.V("acc"), ir.V(dst)))
			continue
		}
		// The rest are input-gated: statically reachable, dynamically sparse.
		then := m.Block()
		next := m.Block()
		cur.If(ir.Eq(ir.Mod(ir.Add(ir.V(first), ir.I(int64(k))), ir.I(8)), ir.I(0)), then, next)
		then.InvokeTo(dst, callee, ir.V(first), ir.V(second))
		then.Assign("acc", ir.Add(ir.V("acc"), ir.V(dst)))
		then.Goto(next)
		cur = next
	}
	if g.cfg.AllowRecursion {
		cur.Invoke("countdown", ir.Mod(ir.V("v0"), ir.I(5)))
	}
	cur.Call("printf", ir.S("result %d\n"), ir.V("acc"))
	cur.Ret()
}

// fillFunction emits a structured body: a sequence of constructs, each a
// plain call run, a branch, a loop, a user call, or (in DB mode) a query
// idiom.
func (g *gen) fillFunction(fb *ir.FuncBuilder, callees []string, idx int) {
	cur := fb.Block()
	// Derive a couple of locals from the parameters so branches differ per
	// test case.
	cur.Assign("x", ir.Add(ir.V("a"), ir.I(int64(idx))))
	cur.Assign("y", ir.Mod(ir.Add(ir.V("b"), ir.I(int64(idx*7+1))), ir.I(13)))

	g.emitted = map[string]bool{}
	n := 1 + g.r.Intn(g.cfg.ConstructsPerFunc)
	for i := 0; i < n; i++ {
		cur = g.construct(fb, cur, callees, g.cfg.MaxDepth, true)
	}
	// Guarantee every assigned callee at least one call site, or the callee
	// (and its whole subtree) would be unreachable in the call graph and its
	// sites would vanish from the program CTM.
	for _, callee := range callees {
		if g.emitted[callee] {
			continue
		}
		dst := g.fresh("r")
		cur.InvokeTo(dst, callee, ir.V("x"), ir.V("y"))
		cur.Assign("y", ir.Mod(ir.Add(ir.V("y"), ir.V(dst)), ir.I(13)))
	}
	cur.RetVal(ir.Add(ir.V("x"), ir.V("y")))
}

// construct appends one construct starting in cur and returns the block
// where control continues. allowCalls gates user-function calls: loop bodies
// must not invoke callees, or loop bounds would multiply through the call
// graph and blow the execution budget.
func (g *gen) construct(fb *ir.FuncBuilder, cur *ir.BlockBuilder, callees []string, depth int, allowCalls bool) *ir.BlockBuilder {
	choice := g.r.Intn(10)
	switch {
	case depth > 0 && choice < 3: // branch
		then := fb.Block()
		els := fb.Block()
		join := fb.Block()
		k := int64(2 + g.r.Intn(3))
		cur.If(ir.Eq(ir.Mod(ir.V("y"), ir.I(k)), ir.I(0)), then, els)
		tEnd := g.construct(fb, then, callees, depth-1, allowCalls)
		tEnd.Goto(join)
		eEnd := g.construct(fb, els, callees, depth-1, allowCalls)
		eEnd.Goto(join)
		return join

	case depth > 0 && choice < 5: // bounded loop
		iv := g.fresh("i")
		head := fb.Block()
		body := fb.Block()
		done := fb.Block()
		bound := g.fresh("bound")
		cur.Assign(bound, ir.Add(ir.Mod(ir.V("x"), ir.I(int64(2+g.r.Intn(4)))), ir.I(1)))
		cur.Assign(iv, ir.I(0))
		cur.Goto(head)
		head.If(ir.Lt(ir.V(iv), ir.V(bound)), body, done)
		bEnd := g.construct(fb, body, callees, depth-1, false)
		bEnd.Assign(iv, ir.Add(ir.V(iv), ir.I(1)))
		bEnd.Goto(head)
		return done

	case allowCalls && len(callees) > 0 && choice < 7: // user call
		callee := callees[g.r.Intn(len(callees))]
		g.emitted[callee] = true
		dst := g.fresh("r")
		cur.InvokeTo(dst, callee, ir.V("x"), ir.V("y"))
		cur.Assign("x", ir.Add(ir.V("x"), ir.Mod(ir.V(dst), ir.I(11))))
		return cur

	case g.cfg.UseDB && choice == 7: // query idiom
		return g.dbIdiom(fb, cur)

	default: // run of 1–3 plain library calls
		for k := 0; k < 1+g.r.Intn(3); k++ {
			name := g.cfg.Vocab[g.r.Intn(len(g.cfg.Vocab))]
			g.plainCall(cur, name)
		}
		return cur
	}
}

// plainCall emits a library call with arguments that are always safe for the
// interpreter's builtin (or inert for unknown names).
func (g *gen) plainCall(bb *ir.BlockBuilder, name string) {
	switch name {
	case "printf":
		bb.Call("printf", ir.S("v=%d\n"), ir.V("y"))
	case "puts":
		bb.Call("puts", ir.S("checkpoint"))
	case "sprintf":
		bb.CallTo(g.fresh("s"), "sprintf", ir.S("[%d]"), ir.V("x"))
	case "strcpy":
		bb.CallTo(g.fresh("s"), "strcpy", ir.S("buffer"))
	case "strcat":
		bb.CallTo(g.fresh("s"), "strcat", ir.S("a"), ir.S("b"))
	case "strlen":
		bb.CallTo(g.fresh("n"), "strlen", ir.S("sample"))
	case "strcmp":
		bb.CallTo(g.fresh("n"), "strcmp", ir.S("a"), ir.S("b"))
	case "atoi":
		bb.CallTo(g.fresh("n"), "atoi", ir.S("12"))
	case "memcpy":
		bb.CallTo(g.fresh("s"), "memcpy", ir.S("src"))
	default:
		// Inert vocabulary call (regcomp, inflate, crc32, ...): observable,
		// no semantics needed.
		bb.Call(name, ir.V("y"))
	}
}

// dbIdiom emits connect-less query/iterate/print over a random table using
// the connection opened in main — passed implicitly via a fresh connection
// here to keep helpers self-contained.
func (g *gen) dbIdiom(fb *ir.FuncBuilder, cur *ir.BlockBuilder) *ir.BlockBuilder {
	table := g.cfg.Tables[g.r.Intn(len(g.cfg.Tables))]
	conn := g.fresh("conn")
	res := g.fresh("res")
	rows := g.fresh("rows")
	iv := g.fresh("r")
	val := g.fresh("val")

	cur.CallTo(conn, "PQconnectdb")
	limit := 1 + g.r.Intn(5)
	cur.CallTo(res, "PQexec", ir.V(conn),
		ir.Cat(ir.S(fmt.Sprintf("SELECT * FROM %s WHERE id >= ", table)),
			ir.Mod(ir.V("y"), ir.I(7)),
			ir.S(fmt.Sprintf(" ORDER BY id LIMIT %d", limit))))
	cur.CallTo(rows, "PQntuples", ir.V(res))
	cur.Assign(iv, ir.I(0))

	head := fb.Block()
	body := fb.Block()
	done := fb.Block()
	cur.Goto(head)
	head.If(ir.Lt(ir.V(iv), ir.V(rows)), body, done)
	body.CallTo(val, "PQgetvalue", ir.V(res), ir.V(iv), ir.I(0))
	body.Call("printf", ir.S("%s\n"), ir.V(val))
	body.Assign(iv, ir.Add(ir.V(iv), ir.I(1)))
	body.Goto(head)
	done.Call("PQfinish", ir.V(conn))
	return done
}
