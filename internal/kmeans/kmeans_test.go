package kmeans

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates three well-separated Gaussian clusters.
func blobs(r *rand.Rand, per int) ([][]float64, []int) {
	centres := [][]float64{{0, 0}, {20, 0}, {0, 20}}
	var pts [][]float64
	var truth []int
	for c, cen := range centres {
		for i := 0; i < per; i++ {
			pts = append(pts, []float64{
				cen[0] + r.NormFloat64(),
				cen[1] + r.NormFloat64(),
			})
			truth = append(truth, c)
		}
	}
	return pts, truth
}

func TestClusterSeparatesBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts, truth := blobs(r, 40)
	res, err := Cluster(pts, 3, 7, 0)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if res.K != 3 {
		t.Fatalf("K = %d, want 3", res.K)
	}
	// Every ground-truth blob must map to exactly one cluster.
	mapping := map[int]int{}
	for i, c := range res.Assign {
		if prev, ok := mapping[truth[i]]; ok && prev != c {
			t.Fatalf("blob %d split across clusters %d and %d", truth[i], prev, c)
		}
		mapping[truth[i]] = c
	}
	if len(mapping) != 3 {
		t.Errorf("blobs mapped to %d clusters", len(mapping))
	}
}

func TestDeterministicForSeed(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts, _ := blobs(r, 30)
	a, err := Cluster(pts, 3, 42, 0)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	b, err := Cluster(pts, 3, 42, 0)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestKLargerThanPoints(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	res, err := Cluster(pts, 10, 1, 0)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if res.K != 2 {
		t.Errorf("K = %d, want 2", res.K)
	}
}

func TestDuplicatePointsCollapseSeeds(t *testing.T) {
	pts := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res, err := Cluster(pts, 3, 1, 0)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if res.K != 1 {
		t.Errorf("K = %d, want 1 for identical points", res.K)
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Errorf("Assign = %v", res.Assign)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Cluster(nil, 2, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty input err = %v", err)
	}
	if _, err := Cluster([][]float64{{1}, {1, 2}}, 2, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("ragged input err = %v", err)
	}
	if _, err := Cluster([][]float64{{1}}, 0, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("k=0 err = %v", err)
	}
}

// TestAssignmentsAreNearestCentroid is the K-means invariant: after
// convergence every point belongs to its nearest centroid.
func TestAssignmentsAreNearestCentroid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts, _ := blobs(r, 15)
		res, err := Cluster(pts, 4, seed, 0)
		if err != nil {
			return false
		}
		for i, p := range pts {
			best, bi := math.Inf(1), -1
			for c, cen := range res.Centroids {
				if dd := sqDist(p, cen); dd < best {
					best, bi = dd, c
				}
			}
			if bi != res.Assign[i] {
				// Allow exact ties between centroids.
				if sqDist(p, res.Centroids[res.Assign[i]]) != best {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAllPointsAssignedInRange(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts, _ := blobs(r, 25)
	res, err := Cluster(pts, 5, 3, 0)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if len(res.Assign) != len(pts) {
		t.Fatalf("Assign length %d != points %d", len(res.Assign), len(pts))
	}
	for i, a := range res.Assign {
		if a < 0 || a >= res.K {
			t.Errorf("point %d assigned to %d (K=%d)", i, a, res.K)
		}
	}
}
