// Package kmeans implements K-means clustering with k-means++ seeding, used
// by the Profile Constructor to merge call sites with similar transition
// behaviour into shared HMM hidden states (paper §IV-C4).
//
// The RNG is seeded by the caller so that profiles are reproducible.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadInput reports degenerate input.
var ErrBadInput = errors.New("kmeans: bad input")

// Result is a clustering.
type Result struct {
	// K is the number of clusters actually produced (≤ requested when there
	// are fewer distinct points).
	K int
	// Assign maps each input point to its cluster in [0, K).
	Assign []int
	// Centroids holds the K cluster centres.
	Centroids [][]float64
	// Iterations is how many Lloyd rounds ran.
	Iterations int
}

// Cluster partitions points into k clusters. maxIters bounds Lloyd
// iterations (≤0 means 100).
func Cluster(points [][]float64, k int, seed int64, maxIters int) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("%w: no points", ErrBadInput)
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("%w: point %d has dim %d, want %d", ErrBadInput, i, len(p), d)
		}
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: k = %d", ErrBadInput, k)
	}
	if k > n {
		k = n
	}
	if maxIters <= 0 {
		maxIters = 100
	}

	r := rand.New(rand.NewSource(seed))
	centroids := seedPlusPlus(points, k, r)
	k = len(centroids)

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{K: k, Assign: assign, Centroids: centroids}

	counts := make([]int, k)
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, p := range points {
			best, bi := math.Inf(1), 0
			for c, cen := range centroids {
				if dd := sqDist(p, cen); dd < best {
					best, bi = dd, c
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		res.Iterations = iter + 1
		if !changed {
			break
		}
		for c := range centroids {
			counts[c] = 0
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				centroids[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid, the standard fix for collapse.
				far, fi := -1.0, 0
				for i, p := range points {
					if dd := sqDist(p, centroids[assign[i]]); dd > far {
						far, fi = dd, i
					}
				}
				copy(centroids[c], points[fi])
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] *= inv
			}
		}
	}
	return res, nil
}

// seedPlusPlus picks initial centroids by k-means++: each subsequent seed is
// drawn with probability proportional to its squared distance from the
// nearest existing seed. Duplicate points can yield fewer than k seeds.
func seedPlusPlus(points [][]float64, k int, r *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, clonePoint(points[r.Intn(n)]))
	dists := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if dd := sqDist(p, c); dd < best {
					best = dd
				}
			}
			dists[i] = best
			total += best
		}
		if total == 0 {
			break // all remaining points coincide with existing seeds
		}
		x := r.Float64() * total
		var acc float64
		pick := n - 1
		for i, dd := range dists {
			acc += dd
			if x < acc {
				pick = i
				break
			}
		}
		centroids = append(centroids, clonePoint(points[pick]))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clonePoint(p []float64) []float64 { return append([]float64(nil), p...) }
