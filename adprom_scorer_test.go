package adprom

import (
	"math"
	"reflect"
	"testing"
)

// TestFacadeScorerMode covers the scorer-configuration surface: the same
// WithScorerMode option value configures both NewMonitor and NewRuntime,
// exact stays the default, batched observe matches per-call observe through
// the public API, and the top-K approximation's error bound surfaces on
// alerts and decision provenance instead of being silently applied.
func TestFacadeScorerMode(t *testing.T) {
	app := HospitalApp()
	traces, err := app.CollectTraces(ModeADPROM)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := Train(app.Prog, traces, TrainOptions{Train: HMMOptions{MaxIters: 4}})
	if err != nil {
		t.Fatal(err)
	}

	// A trace with a foreign-call burst so detection actually raises alerts.
	attacked := append(Trace{}, traces[0]...)
	for i := 0; i < 6; i++ {
		attacked = append(attacked, Call{
			Label: "curl_easy_perform", Name: "curl_easy_perform", Caller: "main",
		})
	}

	if !NewMonitor(prof).Engine().ScorerMode().Exact() {
		t.Fatal("default monitor mode is not exact")
	}
	mode := ScorerTopK(6)
	mon := NewMonitor(prof, WithScorerMode(mode))
	if got := mon.Engine().ScorerMode(); got != mode {
		t.Fatalf("monitor mode = %v, want %v", got, mode)
	}

	// Monitor.ObserveBatch is call-for-call equivalent to Observe.
	perCall := NewMonitor(prof, WithScorerMode(mode))
	var want []Alert
	for _, c := range attacked {
		want = append(want, perCall.Engine().Observe(c)...)
	}
	got := mon.ObserveBatch(attacked)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batched monitor alerts diverge:\nbatch    %+v\nper-call %+v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("attacked trace raised no alerts; the check is vacuous")
	}
	var bounded int
	for _, a := range got {
		if a.ScoreErrorBound < 0 {
			t.Fatalf("negative error bound: %+v", a)
		}
		if a.ScoreErrorBound > 0 {
			bounded++
		}
	}
	if bounded == 0 {
		t.Fatal("top-K alerts carry no positive ScoreErrorBound")
	}

	// The same option value configures a Runtime; batched session ingest
	// raises the same alerts and the bound lands on decision provenance.
	rt := NewRuntime(prof, WithWorkers(1), WithScorerMode(mode), WithDecisionLog(256, 1))
	s := rt.Session("batch")
	if err := s.ObserveBatch(attacked); err != nil {
		t.Fatal(err)
	}
	history, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Close flushes the session, so compare against the per-call engine's
	// full flushed history.
	if fullWant := perCall.Engine().Flush(); !reflect.DeepEqual(history, fullWant) {
		t.Fatalf("runtime batched alerts diverge:\nruntime  %+v\nper-call %+v", history, fullWant)
	}
	var provenanced int
	for _, d := range rt.Decisions(0) {
		if d.Flagged && d.ScoreErrorBound > 0 && !math.IsInf(d.ScoreErrorBound, 0) {
			provenanced++
		}
	}
	if provenanced == 0 {
		t.Fatal("no flagged decision carries the top-K error bound")
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}
