package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"adprom/internal/attack"
	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/dataset"
	"adprom/internal/detect"
	"adprom/internal/hmm"
	"adprom/internal/obsv"
	"adprom/internal/profile"
	"adprom/internal/runtime"
	"adprom/internal/sqlchan"
)

// TestExplainFusedAlert drives the full forensic loop the explain command
// exists for: a two-channel runtime with tracing on judges the
// cardinality-mimicry attack (invisible to the HMM, caught by the SQL
// channel), and `explain <alert-seq>` against the live introspection
// endpoint must reconstruct the complete stage timeline — admission,
// scoring with both channels' score/threshold margins, the profile
// generation — plus the correlated judgement evidence. Trace-ID lookup and
// the offline decision-log mode must explain the same alert.
func TestExplainFusedAlert(t *testing.T) {
	app := dataset.AppB()
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := core.Train(app.Prog, traces, profile.Options{
		Train: hmm.TrainOptions{MaxIters: 4}, MaxTrainWindows: 1500})
	if err != nil {
		t.Fatal(err)
	}
	sqlProf, err := sqlchan.Train(traces, sqlchan.Options{SensitiveColumns: []string{"name", "balance"}})
	if err != nil {
		t.Fatal(err)
	}
	var mim attack.Attack
	for _, a := range attack.SQLChannelAttacks() {
		if a.Name == "cardinality-mimicry" {
			mim = a
		}
	}
	if mim.Name == "" {
		t.Fatal("cardinality-mimicry attack not bundled")
	}
	prog, err := mim.Apply(app.Prog)
	if err != nil {
		t.Fatal(err)
	}
	mimicTrace, err := app.RunCase(prog, mim.Cases[0], collector.ModeADPROM, mim.Setup)
	if err != nil {
		t.Fatal(err)
	}

	rt := runtime.New(p,
		runtime.WithWorkers(2),
		runtime.WithSQLChannel(sqlProf),
		runtime.WithFusion(detect.FusionConfig{}),
		runtime.WithTracing(64, 1),
		runtime.WithAlertFunc(func(string, detect.Alert) {}),
	)
	defer rt.Close()
	s := rt.Session("mimic-1")
	if err := s.ObserveBatch(mimicTrace); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	var alert obsv.Decision
	deadline := time.Now().Add(5 * time.Second)
	for alert.Trace == "" {
		for _, d := range rt.Decisions(0) {
			if d.Flagged && d.Trace != "" {
				alert = d
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no flagged decision with a trace ID; decisions: %+v", rt.Decisions(0))
		}
		time.Sleep(5 * time.Millisecond)
	}

	ts := httptest.NewServer(obsv.NewHandler(obsv.ServerConfig{
		Decisions: rt.Decisions,
		Traces:    rt.Traces,
		TraceByID: rt.TraceByID,
	}))
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	var out bytes.Buffer
	if err := explainLive(&out, addr, "", strconv.Itoa(alert.Seq)); err != nil {
		t.Fatalf("explain by seq: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"ALERT",         // the trace header marks the alert-bearing op
		"flush",         // root span: the op that judged the partial window
		"score",         // engine scoring stage
		"score.sql",     // the channel that caught the mimicry
		"threshold=",    // per-channel judgement evidence on the span
		"fusion",        // the fused judge's span with both margins
		"hmm_margin=",   // fusion evidence: HMM channel margin
		"sql_margin=",   // fusion evidence: SQL channel margin
		"sink",          // alert delivery stage
		"generation=",   // the profile generation that judged the window
		"hmm:   score=", // judgement block: HMM margin vs threshold
		"sql:   score=", // judgement block: SQL margin vs threshold
		"margin=",       // explicit score/threshold margins
		"verdict=",      // the decision's flag
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain output missing %q:\n%s", want, text)
		}
	}

	// The same alert resolved by trace ID renders the same timeline.
	out.Reset()
	if err := explainLive(&out, addr, "", alert.Trace); err != nil {
		t.Fatalf("explain by trace ID: %v", err)
	}
	if !strings.Contains(out.String(), "trace "+alert.Trace) {
		t.Errorf("trace-ID lookup did not render trace %s:\n%s", alert.Trace, out.String())
	}

	// Offline mode: a recorded /decisions capture still explains the
	// judgement (minus the span timeline, which only a live -trace server
	// holds).
	capture := filepath.Join(t.TempDir(), "decisions.json")
	data, err := json.Marshal(rt.Decisions(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(capture, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := explainLog(&out, capture, strconv.Itoa(alert.Seq)); err != nil {
		t.Fatalf("explain from capture: %v", err)
	}
	for _, want := range []string{"judgements only", "sql:   score=", "generation="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("offline explain missing %q:\n%s", want, out.String())
		}
	}

	// An unknown key fails with a diagnosable error, not an empty render.
	if err := explainLive(&out, addr, "", "no-such-trace"); err == nil {
		t.Error("explain of an unknown trace ID succeeded")
	}
}
