// Command adprom drives the AD-PROM reproduction from the command line:
// static analysis, profile training, attack detection demos, and the paper's
// full experiment suite.
//
// Usage:
//
//	adprom analyze    -app <name>
//	adprom train      -app <name> -out <profile.gob>
//	adprom detect     -app <name> [-profile <profile.gob>] [-attack <1..5|mitm>]
//	adprom serve      -app <name> [-streams <n>] [-workers <n>] [-queue <n>] [-drop block|newest] [-shed] [-shed-seed <n>] [-overload] [-repeat <n>] [-batch <n>] [-scorer exact|topk:<k>] [-sql-channel] [-chaos] [-profile-dir <dir>] [-http <addr>] [-log]
//	adprom serve      -tenants <a,b,...> -ingest-addr <addr> [-ingest-codec auto|ndjson|binary] [-tenant-dir <dir>] [-tenant-quota <n>] [-sql-channel] [-http <addr>]
//	adprom profile    inspect <file>...
//	adprom experiment <table3|table4|table5|table6|table7|table8|fig10|clustering|ablation|corpus|all> [-full]
//
// App names: apph, appb, apps (CA-dataset), app1..app4 (SIR-style).
//
// With -shed, serve runs the risk-aware ShedByRisk admission controller
// instead of a blanket full-queue policy: sessions with recent alerts,
// drifting scores, or sensitive-table touches are always scored, while
// low-risk streams are thinned probabilistically (deterministically under
// -shed-seed) as queues fill. -overload slows the detection workers so the
// replay's offered load exceeds capacity, demonstrating the measured
// degradation curve; the run ends with a shed summary (shed rate, estimated
// miss probability, queue high water).
//
// With -profile-dir, serve loads its starting profile from the newest
// .adprof file in the directory (when one exists) and keeps watching it for
// the whole replay: each new or rewritten profile file is hot-swapped into
// the running detection runtime with zero downtime, so a lifecycle manager
// or an operator publishing generations into the directory retunes a live
// server without restarting it.
//
// With -http, serve exposes the live introspection endpoint on the given
// address — /metrics (Prometheus text format), /decisions (recent judgement
// provenance as JSON), /healthz, /readyz, and /debug/pprof/ — and keeps it
// (and the detection runtime) alive after the replay until SIGINT/SIGTERM,
// so operators and scrapers can inspect a running server. -log mirrors the
// runtime's structured events (worker restarts, quarantines, profile swaps)
// to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"adprom/internal/attack"
	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/dataset"
	"adprom/internal/detect"
	"adprom/internal/experiments"
	"adprom/internal/faultinject"
	"adprom/internal/hmm"
	"adprom/internal/interp"
	"adprom/internal/lifecycle"
	"adprom/internal/obsv"
	"adprom/internal/profile"
	"adprom/internal/runtime"
	"adprom/internal/shed"
	"adprom/internal/sqlchan"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "detect":
		err = cmdDetect(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "adprom:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  adprom analyze    -app <name>
  adprom train      -app <name> -out <profile.gob>
  adprom detect     -app <name> [-profile <file>] [-attack <1..5|mitm>]
  adprom serve      -app <name> [-streams <n>] [-workers <n>] [-queue <n>] [-drop block|newest] [-shed] [-shed-seed <n>] [-overload] [-repeat <n>] [-batch <n>] [-scorer exact|topk:<k>] [-sql-channel] [-chaos] [-profile-dir <dir>] [-http <addr>] [-trace <n>] [-trace-sample <n>] [-log] [-log-format text|json]
  adprom explain    [-http <addr>] [-tenant <id>] [-log <decisions.json>] <alert-seq|trace-id>
  adprom profile    inspect <file>...
  adprom experiment <table3|table4|table5|table6|table7|table8|fig10|clustering|ablation|corpus|all> [-full]

apps: apph, appb, apps (CA-dataset), app1, app2, app3, app4 (SIR-style)
serve -profile-dir: load the newest .adprof in <dir> at startup and hot-swap
every profile published there while the replay runs
serve -http: expose /metrics, /decisions, /healthz, /readyz, /debug/pprof/ on
<addr> and stay alive after the replay until SIGINT/SIGTERM
serve -shed: risk-aware admission (ShedByRisk) — high-risk sessions always
scored, low-risk ones thinned as queues fill; -overload slows the workers so
the replay overruns capacity and exercises the degradation curve
serve -tenants/-ingest-addr: fleet mode — serve many apps at once as tenants,
each behind its own profile shard, accepting collector events over TCP in
NDJSON or binary frames (-ingest-codec); -tenant-dir holds per-tenant profile
lineages for lazy loading and hot-swap, -tenant-quota caps sessions per tenant
serve -sql-channel: two-channel detection — an SQL-behaviour scorer (query
signatures, result cardinalities, sensitive columns) runs beside the HMM and
the fused judge escalates when the weighted margins agree; tune with
-sql-window, -sql-sensitive, -fusion-hmm-weight, -fusion-sql-weight, and
-fusion-slack (negative disables escalation). In fleet mode each named tenant
trains its own SQL profile.
serve -trace: retain up to <n> end-to-end decision traces (alerts always kept,
healthy ops sampled 1-in-<trace-sample>) and expose them on /traces and
/traces/{id}; explain renders one as a forensic timeline
explain: reconstruct an alert's pipeline timeline — ingest, routing, shed
admission, per-channel scoring, fusion, sink delivery — from a live server's
/traces endpoint (-http, numeric alert seq or trace ID) or from a recorded
/decisions JSON capture (-log)`)
}

// newLogger builds the stderr slog logger for -log in the encoding picked by
// -log-format: text (the default, human-oriented logfmt) or json (one object
// per line, for log shippers that index by key).
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func lookupApp(name string) (*dataset.App, error) {
	apps := append(dataset.CAApps(), dataset.SIRApps()...)
	for _, a := range apps {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("unknown app %q", name)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	appName := fs.String("app", "appb", "application to analyze")
	verbose := fs.Bool("v", false, "dump the full pCTM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	app, err := lookupApp(*appName)
	if err != nil {
		return err
	}
	sa, err := core.Analyze(app.Prog)
	if err != nil {
		return err
	}
	fmt.Printf("program %s: %d functions, %d blocks, %d call sites\n",
		app.Name, len(app.Prog.Functions), app.Prog.NumBlocks(), app.NumStates())
	fmt.Printf("labelled output statements (DDG): %d\n", len(sa.DDG.Labels))
	for site, label := range sa.DDG.Labels {
		fmt.Printf("  %s -> %s\n", site, label)
	}
	fmt.Printf("pCTM: %d sites, %d observation labels\n", sa.PCTM.NumSites(), len(sa.PCTM.Labels()))
	fmt.Printf("timings: cfg=%v probest=%v aggregation=%v\n",
		sa.Timings.BuildCFG, sa.Timings.ProbEst, sa.Timings.Aggregation)
	if err := sa.PCTM.CheckInvariants(1e-9); err != nil {
		fmt.Printf("pCTM invariants: VIOLATED: %v\n", err)
	} else {
		fmt.Println("pCTM invariants: ok")
	}
	if *verbose {
		fmt.Print(sa.PCTM)
	}
	return nil
}

func trainApp(app *dataset.App) (*profile.Profile, error) {
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		return nil, err
	}
	p, _, err := core.Train(app.Prog, traces, profile.Options{
		Train:           hmm.TrainOptions{MaxIters: 12},
		MaxTrainWindows: 1500,
	})
	return p, err
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	appName := fs.String("app", "appb", "application to train")
	out := fs.String("out", "", "profile output path (gob)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	app, err := lookupApp(*appName)
	if err != nil {
		return err
	}
	p, err := trainApp(app)
	if err != nil {
		return err
	}
	fmt.Printf("trained %s: %d states (before reduction %d), %d symbols, threshold %.4f, %d iterations\n",
		p.Program, p.StatesAfter, p.StatesBefore, len(p.Symbols), p.Threshold, p.TrainResult.Iterations)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := p.Save(f); err != nil {
			return err
		}
		fmt.Println("profile written to", *out)
	}
	return nil
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	appName := fs.String("app", "appb", "application to monitor")
	profPath := fs.String("profile", "", "trained profile (gob); trains fresh when empty")
	attackID := fs.String("attack", "", "attack to stage: 1..5 or mitm (empty = normal runs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	app, err := lookupApp(*appName)
	if err != nil {
		return err
	}

	var p *profile.Profile
	if *profPath != "" {
		f, err := os.Open(*profPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if p, err = profile.Load(f); err != nil {
			return err
		}
	} else {
		fmt.Println("training profile (pass -profile to reuse one)...")
		if p, err = trainApp(app); err != nil {
			return err
		}
	}

	prog := app.Prog
	cases := app.TestCases

	var atk *attack.Attack
	if *attackID != "" {
		if *attackID == "mitm" {
			a := attack.AppBMITM()
			atk = &a
		} else {
			n, err := strconv.Atoi(*attackID)
			if err != nil {
				return fmt.Errorf("bad -attack %q", *attackID)
			}
			for _, a := range attack.AppBAttacks() {
				if a.ID == n {
					cp := a
					atk = &cp
				}
			}
			if atk == nil {
				return fmt.Errorf("no attack %d", n)
			}
		}
		if prog, err = atk.Apply(app.Prog); err != nil {
			return err
		}
		if atk.Cases != nil {
			cases = atk.Cases
		}
		fmt.Printf("staging attack %d (%s): %s\n", atk.ID, atk.Name, atk.Description)
	}

	totals := map[detect.Flag]int{}
	for _, tc := range cases {
		var setup func(*interp.Interp, *interp.World)
		if atk != nil {
			setup = atk.Setup
		}
		tr, err := app.RunCase(prog, tc, collector.ModeADPROM, setup)
		if err != nil {
			return err
		}
		mon := core.NewMonitor(p, nil)
		alerts := mon.ObserveTrace(tr)
		for _, a := range alerts {
			totals[a.Flag]++
		}
		if len(alerts) > 0 {
			a := alerts[0]
			fmt.Printf("case %-16s %3d alerts; first: %s", tc.Name, len(alerts), a.Flag)
			if a.Flag == detect.FlagDL && len(a.Origins) > 0 {
				fmt.Printf(" (source: %v)", a.Origins)
			}
			fmt.Println()
		}
	}
	if len(totals) == 0 {
		fmt.Println("no alerts: behaviour matches the profile")
	} else {
		fmt.Printf("alert totals: %v\n", totals)
	}
	return nil
}

// cmdServe replays an application's collected traces as N concurrent client
// streams through the multi-session detection runtime and reports throughput
// — the serving-mode counterpart of `detect`, which scores one stream at a
// time. With -chaos it injects faults (a crashing, slow alert sink; an
// engine panic on one stream; a worker crash on another) to demonstrate that
// the runtime isolates failures: healthy streams finish, victims are
// quarantined, and the run ends with clean shutdown and fault counters.
// parseScorerMode parses the -scorer flag: "exact" or "topk:<k>".
func parseScorerMode(s string) (hmm.ScorerMode, error) {
	switch {
	case s == "" || s == "exact":
		return hmm.ScorerExact, nil
	case len(s) > 5 && s[:5] == "topk:":
		k, err := strconv.Atoi(s[5:])
		if err != nil || k < 1 {
			return hmm.ScorerMode{}, fmt.Errorf("bad -scorer %q (want exact or topk:<k>, k >= 1)", s)
		}
		return hmm.ScorerTopK(k), nil
	default:
		return hmm.ScorerMode{}, fmt.Errorf("bad -scorer %q (want exact or topk:<k>)", s)
	}
}

// sqlChannelFlags is the serve flag subset enabling two-channel detection:
// an SQL-behaviour scorer fused with the HMM channel.
type sqlChannelFlags struct {
	enabled   bool
	window    int
	sensitive string
	hmmWeight float64
	sqlWeight float64
	slack     float64
}

// registerSQLFlags adds the two-channel detection flags to serve's flag set.
func registerSQLFlags(fs *flag.FlagSet) *sqlChannelFlags {
	sf := &sqlChannelFlags{}
	fs.BoolVar(&sf.enabled, "sql-channel", false, "enable the SQL-behaviour detection channel fused with the HMM channel")
	fs.IntVar(&sf.window, "sql-window", 0, "SQL channel sliding query-window length (0 = default)")
	fs.StringVar(&sf.sensitive, "sql-sensitive", "name,balance", "comma-separated sensitive column names for DL attribution")
	fs.Float64Var(&sf.hmmWeight, "fusion-hmm-weight", 0, "HMM margin weight in fused scoring (0 = default)")
	fs.Float64Var(&sf.sqlWeight, "fusion-sql-weight", 0, "SQL margin weight in fused scoring (0 = default)")
	fs.Float64Var(&sf.slack, "fusion-slack", 0, "fused-margin escalation slack (0 = default, negative disables escalation)")
	return sf
}

// trainOptions maps the flags to sqlchan training options.
func (sf *sqlChannelFlags) trainOptions() sqlchan.Options {
	var cols []string
	for _, c := range strings.Split(sf.sensitive, ",") {
		if c = strings.TrimSpace(c); c != "" {
			cols = append(cols, c)
		}
	}
	return sqlchan.Options{WindowLen: sf.window, SensitiveColumns: cols}
}

// fusionConfig maps the flags to the fused judge's configuration.
func (sf *sqlChannelFlags) fusionConfig() detect.FusionConfig {
	return detect.FusionConfig{
		HMMWeight:       sf.hmmWeight,
		SQLWeight:       sf.sqlWeight,
		EscalationSlack: sf.slack,
	}
}

// trainFor builds the SQL-behaviour profile for one app from its collected
// traces (the same corpus the HMM trains on).
func (sf *sqlChannelFlags) trainFor(app *dataset.App, traces []collector.Trace) (*sqlchan.Profile, error) {
	sqlProf, err := sqlchan.Train(traces, sf.trainOptions())
	if err != nil {
		return nil, fmt.Errorf("sql channel for %s: %w", app.Name, err)
	}
	return sqlProf, nil
}

// replayTrace feeds one trace through a serving session — batched when
// batch > 0, per-call otherwise — and flushes the trailing short window.
// Chunks shed under -drop newest are skipped, matching ObserveTrace.
func replayTrace(s *runtime.Session, tr collector.Trace, batch int) error {
	if batch <= 0 {
		_, err := s.ObserveTrace(tr)
		return err
	}
	for lo := 0; lo < len(tr); lo += batch {
		hi := lo + batch
		if hi > len(tr) {
			hi = len(tr)
		}
		if err := s.ObserveBatch(tr[lo:hi]); err != nil && !errors.Is(err, runtime.ErrDropped) {
			return err
		}
	}
	_, err := s.Flush()
	return err
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	appName := fs.String("app", "appb", "application to serve")
	profPath := fs.String("profile", "", "trained profile (gob); trains fresh when empty")
	streams := fs.Int("streams", 64, "concurrent client streams")
	workers := fs.Int("workers", 0, "detection workers (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 256, "per-worker ingest queue depth")
	drop := fs.String("drop", "block", "full-queue policy: block (backpressure) or newest (shed)")
	shedFlag := fs.Bool("shed", false, "risk-aware admission (ShedByRisk): always score high-risk sessions, thin low-risk ones under pressure")
	shedSeed := fs.Uint64("shed-seed", 1, "deterministic admission seed for -shed")
	overload := fs.Bool("overload", false, "slow the workers so the replay's offered load exceeds capacity (pairs with -shed or -drop newest)")
	repeat := fs.Int("repeat", 8, "replay passes per stream")
	batch := fs.Int("batch", 64, "calls per batched observe (0 = per-call ingest)")
	scorer := fs.String("scorer", "exact", "scoring kernel: exact or topk:<k> (approximate, with reported error bound)")
	chaos := fs.Bool("chaos", false, "inject sink, engine, and worker faults during the replay")
	profileDir := fs.String("profile-dir", "", "load the newest .adprof here and hot-swap profiles published while serving")
	watchEvery := fs.Duration("watch-interval", 500*time.Millisecond, "poll interval for -profile-dir")
	httpAddr := fs.String("http", "", "serve the introspection endpoint (/metrics /decisions /traces /healthz /readyz /debug/pprof/) on this address and linger after the replay")
	traceCap := fs.Int("trace", 0, "retain up to this many decision traces (0 = tracing off); alerts always kept, healthy ops sampled")
	traceSample := fs.Int("trace-sample", 16, "with -trace, keep one in this many healthy (unflagged) traces")
	logEvents := fs.Bool("log", false, "emit structured runtime events (worker restarts, quarantines, swaps) to stderr")
	logFormat := fs.String("log-format", "text", "structured event encoding for -log: text or json")
	ff := registerFleetFlags(fs)
	sf := registerSQLFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if ff.active() {
		// Fleet mode: a long-lived network daemon serving many tenants at
		// once instead of replaying one app's traces locally.
		return serveFleet(ff, sf, *workers, *queue, *drop, *shedFlag, *shedSeed,
			*scorer, *httpAddr, *watchEvery, *traceCap, *traceSample, *logEvents, *logFormat)
	}
	if *streams < 1 {
		*streams = 1
	}
	if *chaos && *streams < 2 {
		// Chaos mode quarantines two victim streams; keep at least one
		// healthy stream to demonstrate isolation.
		*streams = 2
	}
	app, err := lookupApp(*appName)
	if err != nil {
		return err
	}
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		return err
	}

	var p *profile.Profile
	switch {
	case *profPath != "":
		f, err := os.Open(*profPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if p, err = profile.Load(f); err != nil {
			return err
		}
	case *profileDir != "":
		path, loaded, err := lifecycle.LatestProfile(*profileDir)
		switch {
		case err == nil:
			p = loaded
			fmt.Printf("serving generation from %s\n", path)
		case errors.Is(err, os.ErrNotExist):
			fmt.Printf("no profile in %s yet; training a starting profile...\n", *profileDir)
			if p, err = trainApp(app); err != nil {
				return err
			}
		default:
			return err
		}
	default:
		fmt.Println("training profile (pass -profile to reuse one)...")
		if p, err = trainApp(app); err != nil {
			return err
		}
	}

	mode, err := parseScorerMode(*scorer)
	if err != nil {
		return err
	}
	opts := []runtime.Option{
		runtime.WithWorkers(*workers),
		runtime.WithQueueDepth(*queue),
		runtime.WithScorerMode(mode),
	}
	if sf.enabled {
		sqlProf, err := sf.trainFor(app, traces)
		if err != nil {
			return err
		}
		opts = append(opts, runtime.WithSQLChannel(sqlProf), runtime.WithFusion(sf.fusionConfig()))
		fmt.Printf("sql channel: %s\n", sqlProf)
	}
	if *logEvents {
		logger, err := newLogger(*logFormat)
		if err != nil {
			return err
		}
		opts = append(opts, runtime.WithLogger(logger))
	}
	if *traceCap > 0 {
		opts = append(opts, runtime.WithTracing(*traceCap, *traceSample))
	}
	switch *drop {
	case "block":
	case "newest":
		if *shedFlag {
			return errors.New("-shed replaces -drop newest; pick one")
		}
		opts = append(opts, runtime.WithDropPolicy(runtime.DropNewest))
	default:
		return fmt.Errorf("bad -drop %q (want block or newest)", *drop)
	}
	if *shedFlag {
		opts = append(opts, runtime.WithShedConfig(shed.Config{Seed: *shedSeed}))
	}
	if *overload {
		if *chaos {
			return errors.New("-overload and -chaos both own the worker hook; pick one")
		}
		// A per-op stall puts worker capacity far below the replay's offered
		// rate, so queues saturate and the configured policy must degrade.
		opts = append(opts, runtime.WithWorkerHook(faultinject.WorkerLatency(500*time.Microsecond)))
		fmt.Println("overload: workers stalled 500µs/op; offered load will exceed drain capacity")
	}

	var (
		sink        *faultinject.Sink
		engineFault *faultinject.EngineFault
		workerFault *faultinject.WorkerFault
	)
	engineVictim := fmt.Sprintf("stream-%03d", 0)
	workerVictim := fmt.Sprintf("stream-%03d", (*streams-1)%*streams)
	if *chaos {
		sink = faultinject.NewSink(nil, faultinject.PanicEvery(5), faultinject.Latency(time.Millisecond))
		engineFault = faultinject.NewEngineFault(faultinject.FaultPanic, 1,
			func(id string) bool { return id == engineVictim })
		workerFault = faultinject.NewWorkerFault(workerVictim, 3)
		opts = append(opts,
			runtime.WithAlertFunc(sink.Deliver),
			runtime.WithSinkBuffer(16),
			runtime.WithSinkTimeout(50*time.Millisecond),
			runtime.WithJudgeHook(engineFault.Hook),
			runtime.WithWorkerHook(workerFault.Hook),
		)
		fmt.Printf("chaos: sink panics every 5th delivery; engine panic on %s; worker crash on op 3 of %s\n",
			engineVictim, workerVictim)
	}

	rt := runtime.New(p, opts...)
	var srv *http.Server
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			rt.Close()
			return err
		}
		srv = &http.Server{Handler: obsv.NewHandler(obsv.ServerConfig{
			Metrics:   func(w io.Writer) error { return rt.WritePrometheus(w) },
			Decisions: rt.Decisions,
			Traces:    rt.Traces,
			TraceByID: rt.TraceByID,
			Healthz:   func() error { return nil },
			Readyz:    rt.Ready,
		})}
		go func() { _ = srv.Serve(ln) }()
		fmt.Printf("introspection: http://%s (/metrics /decisions /traces /healthz /readyz /debug/pprof/)\n", ln.Addr())
	}
	var watchWG sync.WaitGroup
	stopWatch := func() {}
	if *profileDir != "" {
		var watchCtx context.Context
		watchCtx, stopWatch = context.WithCancel(context.Background())
		defer stopWatch()
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			_ = lifecycle.WatchDir(watchCtx, *profileDir, *watchEvery,
				func(path string, next *profile.Profile, err error) {
					if err != nil {
						fmt.Fprintf(os.Stderr, "profile-dir: skipping %s: %v\n", path, err)
						return
					}
					gen, err := rt.SwapProfile(next)
					if err != nil {
						fmt.Fprintf(os.Stderr, "profile-dir: swap of %s refused: %v\n", path, err)
						return
					}
					fmt.Printf("profile-dir: %s live as generation %d (threshold %.4f)\n",
						path, gen, next.Threshold)
				})
		}()
		fmt.Printf("watching %s every %v for new profile generations\n", *profileDir, *watchEvery)
	}
	fmt.Printf("serving %s: %d streams x %d passes over %d traces\n",
		app.Name, *streams, *repeat, len(traces))
	start := time.Now()
	var wg sync.WaitGroup
	var quarantinedStreams atomic.Int64
	for i := 0; i < *streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := rt.Session(fmt.Sprintf("stream-%03d", i))
			for pass := 0; pass < *repeat; pass++ {
				err := replayTrace(s, traces[(i+pass)%len(traces)], *batch)
				switch {
				case err == nil:
				case errors.Is(err, runtime.ErrDropped):
					// Load shedding under -drop newest: the runtime reports
					// how many calls it shed; keep replaying.
				case errors.Is(err, runtime.ErrSessionFailed):
					quarantinedStreams.Add(1)
					fmt.Fprintf(os.Stderr, "stream %d quarantined: %v\n", i, err)
					return
				default:
					fmt.Fprintf(os.Stderr, "stream %d: %v\n", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if srv != nil {
		// Stay alive so operators (and the CI smoke test) can inspect the
		// still-serving runtime; profile hot-swaps keep applying meanwhile.
		fmt.Println("replay done; introspection endpoint still live — SIGINT/SIGTERM to exit")
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		<-sigc
		signal.Stop(sigc)
		shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
		_ = srv.Shutdown(shutCtx)
		cancelShut()
	}
	stopWatch()
	watchWG.Wait()
	closeCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.CloseContext(closeCtx); err != nil {
		return err
	}
	st := rt.Stats()
	fmt.Println(st)
	fmt.Printf("replayed in %v: %.0f calls/sec across %d workers\n",
		elapsed.Round(time.Millisecond), float64(st.Calls)/elapsed.Seconds(), st.Workers)
	if *shedFlag {
		ss := rt.ShedSnapshot()
		fmt.Printf("shedding: %d calls shed over %d rejecting decisions (rate %.4f); estimated miss probability %.4f; queue high water %d calls\n",
			st.Shed, ss.ShedDecisions, st.ShedRate, st.EstimatedMissProb, st.QueueHighWater)
	}
	if *chaos {
		fmt.Printf("chaos outcome: %d/%d streams quarantined; sink deliveries=%d panics=%d; engine fault fired=%v; worker fault fired=%v\n",
			quarantinedStreams.Load(), *streams, sink.Calls(), sink.Panics(),
			engineFault.Fired(engineVictim), workerFault.Fired())
		healthy := int64(*streams) - quarantinedStreams.Load()
		if healthy <= 0 {
			return fmt.Errorf("chaos replay: no healthy streams survived")
		}
	}
	return nil
}

// cmdProfile groups profile-file utilities. `inspect` prints each saved
// profile's codec header (format version, payload size, CRC-32) and model
// summary, verifying integrity on the way — corrupt or newer-format files
// fail with the codec's typed errors instead of decoding garbage.
func cmdProfile(args []string) error {
	if len(args) < 2 || args[0] != "inspect" {
		return errors.New("usage: adprom profile inspect <file>...")
	}
	for _, path := range args[1:] {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		info, _, err := profile.Inspect(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		format := fmt.Sprintf("v%d", info.FormatVersion)
		if info.FormatVersion == 0 {
			format = "v0 (legacy headerless)"
		}
		fmt.Printf("%s:\n", path)
		fmt.Printf("  format   %s, %d payload bytes, crc32 %s\n", format, info.PayloadBytes, info.Checksum)
		fmt.Printf("  program  %s\n", info.Program)
		fmt.Printf("  model    %d states, %d symbols, reduced=%v, %d training iterations\n",
			info.States, info.Symbols, info.Reduced, info.TrainedIters)
		fmt.Printf("  detect   window %d, threshold %.4f\n", info.WindowLen, info.Threshold)
	}
	return nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	full := fs.Bool("full", false, "run at full scale (slow)")
	seed := fs.Int64("seed", 1, "experiment seed")
	if len(args) == 0 {
		return fmt.Errorf("experiment id required")
	}
	id := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	cfg := experiments.Config{Quick: !*full, Seed: *seed}

	run := func(id string) error {
		var rep *experiments.Report
		var err error
		switch id {
		case "table3":
			_, rep, err = experiments.Table3()
		case "table4":
			_, rep, err = experiments.Table4()
		case "table5":
			_, rep, err = experiments.Table5(cfg)
		case "table6":
			_, rep, err = experiments.Table6(cfg)
		case "table7":
			_, rep, err = experiments.Table7(cfg)
		case "table8":
			_, rep, err = experiments.Table8(cfg)
		case "fig10":
			_, rep, err = experiments.Fig10(cfg)
		case "clustering":
			_, rep, err = experiments.Clustering(cfg)
		case "ablation":
			_, rep, err = experiments.Ablation(cfg)
		case "corpus":
			_, rep, err = experiments.Corpus(cfg)
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		if err != nil {
			return err
		}
		fmt.Println(rep)
		return nil
	}

	if id == "all" {
		for _, e := range []string{"table3", "table4", "table5", "table6", "table7", "table8", "fig10", "clustering", "ablation", "corpus"} {
			if err := run(e); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	}
	return run(id)
}
