package main

import (
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"adprom/internal/profile"
)

func TestLookupApp(t *testing.T) {
	for _, name := range []string{"apph", "appb", "apps", "app1", "app2", "app3", "app4"} {
		app, err := lookupApp(name)
		if err != nil || app.Name != name {
			t.Errorf("lookupApp(%q) = %v, %v", name, app, err)
		}
	}
	if _, err := lookupApp("nope"); err == nil {
		t.Error("lookupApp accepted unknown app")
	}
}

func TestCmdAnalyzeRuns(t *testing.T) {
	if err := cmdAnalyze([]string{"-app", "apph"}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if err := cmdAnalyze([]string{"-app", "ghost"}); err == nil {
		t.Fatal("analyze accepted unknown app")
	}
}

func TestCmdExperimentRejectsUnknown(t *testing.T) {
	if err := cmdExperiment([]string{"tableX"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := cmdExperiment(nil); err == nil {
		t.Fatal("missing experiment id accepted")
	}
}

// trainTestProfile trains apph once and saves it under dir, returning the
// file path.
func trainTestProfile(t *testing.T, dir string) string {
	t.Helper()
	app, err := lookupApp("apph")
	if err != nil {
		t.Fatal(err)
	}
	p, err := trainApp(app)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "gen-000001.adprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdProfileInspect(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a profile")
	}
	path := trainTestProfile(t, t.TempDir())
	if err := cmdProfile([]string{"inspect", path}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := cmdProfile([]string{"inspect"}); err == nil {
		t.Fatal("inspect without files accepted")
	}
	if err := cmdProfile(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.adprof")
	if err := os.WriteFile(bad, []byte("ADPROFgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdProfile([]string{"inspect", bad}); !errors.Is(err, profile.ErrCorrupt) {
		t.Fatalf("inspect on garbage: %v, want ErrCorrupt", err)
	}
}

func TestCmdServeProfileDir(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a profile and replays streams")
	}
	dir := t.TempDir()
	trainTestProfile(t, dir)
	err := cmdServe([]string{
		"-app", "apph", "-profile-dir", dir,
		"-streams", "2", "-repeat", "1", "-workers", "1",
	})
	if err != nil {
		t.Fatalf("serve -profile-dir: %v", err)
	}
}

// TestCmdServeHTTP boots serve with the introspection endpoint, waits for
// the post-replay linger, probes every route, and shuts the server down with
// the same SIGTERM an operator (or the CI smoke step) would send.
func TestCmdServeHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a profile and replays streams")
	}
	// Pick a free port: listen, remember, release. The tiny window before
	// serve re-binds is acceptable in CI.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-app", "apph", "-streams", "2", "-repeat", "1", "-workers", "1",
			"-http", addr, "-log",
		})
	}()

	base := "http://" + addr
	var resp *http.Response
	for i := 0; i < 200; i++ { // training dominates startup; poll generously
		resp, err = http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		select {
		case err := <-done:
			t.Fatalf("serve exited before the endpoint came up: %v", err)
		case <-time.After(250 * time.Millisecond):
		}
	}
	if err != nil {
		t.Fatalf("endpoint never came up on %s: %v", addr, err)
	}

	fetch := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}
	if code, body := fetch("/metrics"); code != 200 || !strings.Contains(body, "adprom_calls_total") {
		t.Errorf("/metrics = %d, body %.120s", code, body)
	}
	if code, _ := fetch("/readyz"); code != 200 {
		t.Errorf("/readyz = %d, want 200 while serving", code)
	}
	if code, body := fetch("/decisions?limit=5"); code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Errorf("/decisions = %d, body %.120s", code, body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}

func TestCmdExperimentTable8(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the SIR corpus")
	}
	if err := cmdExperiment([]string{"table8"}); err != nil {
		t.Fatalf("table8: %v", err)
	}
}
