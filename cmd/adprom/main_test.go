package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"adprom/internal/profile"
)

func TestLookupApp(t *testing.T) {
	for _, name := range []string{"apph", "appb", "apps", "app1", "app2", "app3", "app4"} {
		app, err := lookupApp(name)
		if err != nil || app.Name != name {
			t.Errorf("lookupApp(%q) = %v, %v", name, app, err)
		}
	}
	if _, err := lookupApp("nope"); err == nil {
		t.Error("lookupApp accepted unknown app")
	}
}

func TestCmdAnalyzeRuns(t *testing.T) {
	if err := cmdAnalyze([]string{"-app", "apph"}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if err := cmdAnalyze([]string{"-app", "ghost"}); err == nil {
		t.Fatal("analyze accepted unknown app")
	}
}

func TestCmdExperimentRejectsUnknown(t *testing.T) {
	if err := cmdExperiment([]string{"tableX"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := cmdExperiment(nil); err == nil {
		t.Fatal("missing experiment id accepted")
	}
}

// trainTestProfile trains apph once and saves it under dir, returning the
// file path.
func trainTestProfile(t *testing.T, dir string) string {
	t.Helper()
	app, err := lookupApp("apph")
	if err != nil {
		t.Fatal(err)
	}
	p, err := trainApp(app)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "gen-000001.adprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdProfileInspect(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a profile")
	}
	path := trainTestProfile(t, t.TempDir())
	if err := cmdProfile([]string{"inspect", path}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := cmdProfile([]string{"inspect"}); err == nil {
		t.Fatal("inspect without files accepted")
	}
	if err := cmdProfile(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.adprof")
	if err := os.WriteFile(bad, []byte("ADPROFgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdProfile([]string{"inspect", bad}); !errors.Is(err, profile.ErrCorrupt) {
		t.Fatalf("inspect on garbage: %v, want ErrCorrupt", err)
	}
}

func TestCmdServeProfileDir(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a profile and replays streams")
	}
	dir := t.TempDir()
	trainTestProfile(t, dir)
	err := cmdServe([]string{
		"-app", "apph", "-profile-dir", dir,
		"-streams", "2", "-repeat", "1", "-workers", "1",
	})
	if err != nil {
		t.Fatalf("serve -profile-dir: %v", err)
	}
}

func TestCmdExperimentTable8(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the SIR corpus")
	}
	if err := cmdExperiment([]string{"table8"}); err != nil {
		t.Fatalf("table8: %v", err)
	}
}
