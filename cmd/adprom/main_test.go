package main

import "testing"

func TestLookupApp(t *testing.T) {
	for _, name := range []string{"apph", "appb", "apps", "app1", "app2", "app3", "app4"} {
		app, err := lookupApp(name)
		if err != nil || app.Name != name {
			t.Errorf("lookupApp(%q) = %v, %v", name, app, err)
		}
	}
	if _, err := lookupApp("nope"); err == nil {
		t.Error("lookupApp accepted unknown app")
	}
}

func TestCmdAnalyzeRuns(t *testing.T) {
	if err := cmdAnalyze([]string{"-app", "apph"}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if err := cmdAnalyze([]string{"-app", "ghost"}); err == nil {
		t.Fatal("analyze accepted unknown app")
	}
}

func TestCmdExperimentRejectsUnknown(t *testing.T) {
	if err := cmdExperiment([]string{"tableX"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := cmdExperiment(nil); err == nil {
		t.Fatal("missing experiment id accepted")
	}
}

func TestCmdExperimentTable8(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the SIR corpus")
	}
	if err := cmdExperiment([]string{"table8"}); err != nil {
		t.Fatalf("table8: %v", err)
	}
}
