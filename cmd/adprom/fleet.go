package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"adprom/internal/collector"
	"adprom/internal/detect"
	"adprom/internal/ingest"
	"adprom/internal/lifecycle"
	"adprom/internal/obsv"
	"adprom/internal/profile"
	"adprom/internal/runtime"
	"adprom/internal/shed"
	"adprom/internal/tenant"
	"adprom/internal/trace"
)

// fleetFlags is the serve flag subset that switches serve from single-app
// replay into the multi-tenant network daemon.
type fleetFlags struct {
	tenants     string
	ingestAddr  string
	ingestCodec string
	tenantDir   string
	quota       int
	maxActive   int
}

// registerFleetFlags adds the fleet-mode flags to serve's flag set.
func registerFleetFlags(fs *flag.FlagSet) *fleetFlags {
	ff := &fleetFlags{}
	fs.StringVar(&ff.tenants, "tenants", "", "comma-separated app names to serve as tenants (fleet mode; e.g. apph,appb)")
	fs.StringVar(&ff.ingestAddr, "ingest-addr", "", "accept collector events over TCP on this address (fleet mode)")
	fs.StringVar(&ff.ingestCodec, "ingest-codec", "auto", "ingest wire format: auto, ndjson, or binary")
	fs.StringVar(&ff.tenantDir, "tenant-dir", "", "fleet profile store root (one lineage per tenant); lazily loads unknown tenants and hot-swaps published generations")
	fs.IntVar(&ff.quota, "tenant-quota", 0, "max concurrent sessions per tenant (0 = unlimited)")
	fs.IntVar(&ff.maxActive, "tenant-max-active", 64, "max resident tenant shards; past it the coldest tenant is evicted (negative disables)")
	return ff
}

// active reports whether any fleet-mode flag was used.
func (ff *fleetFlags) active() bool { return ff.tenants != "" || ff.ingestAddr != "" }

// serveFleet runs serve's fleet mode: a long-lived network daemon routing
// ingested call events to per-tenant profile shards. Each -tenants entry is
// trained (or loaded from -tenant-dir's newest generation); -tenant-dir also
// enables lazy loading of tenants first seen on the wire and hot-swapping of
// generations published while serving. The daemon runs until SIGINT/SIGTERM.
func serveFleet(ff *fleetFlags, sf *sqlChannelFlags, workers, queue int, drop string, shedFlag bool, shedSeed uint64,
	scorer string, httpAddr string, watchEvery time.Duration, traceCap, traceSample int, logEvents bool, logFormat string) error {
	if ff.ingestAddr == "" {
		return errors.New("fleet mode needs -ingest-addr (the TCP address collectors stream to)")
	}
	codec, err := ingest.ParseCodec(ff.ingestCodec)
	if err != nil {
		return err
	}
	mode, err := parseScorerMode(scorer)
	if err != nil {
		return err
	}
	opts := []runtime.Option{
		runtime.WithWorkers(workers),
		runtime.WithQueueDepth(queue),
		runtime.WithScorerMode(mode),
	}
	var logger *slog.Logger
	if logEvents {
		if logger, err = newLogger(logFormat); err != nil {
			return err
		}
		opts = append(opts, runtime.WithLogger(logger))
	}
	if traceCap > 0 {
		// Every tenant shard retains its own bounded trace store; the router
		// fans /traces queries out across resident shards.
		opts = append(opts, runtime.WithTracing(traceCap, traceSample))
	}
	// Alerts are the daemon's product, so deliver each one to the event log
	// (or stdout) rather than leaving them visible only through /decisions.
	// Routing them through the async sink pipeline also completes the traced
	// op timeline — ingest→route→score→fusion→sink — for every alert.
	opts = append(opts, runtime.WithAlertFunc(func(session string, a detect.Alert) {
		if logger != nil {
			logger.Warn("alert",
				"session", session,
				"seq", a.Seq,
				"flag", a.Flag.String(),
				"score", a.Score,
				"threshold", a.Threshold,
				"channels", strings.Join(a.Channels, ","))
			return
		}
		fmt.Printf("alert: session=%s seq=%d flag=%s score=%.4f threshold=%.4f channels=%s\n",
			session, a.Seq, a.Flag, a.Score, a.Threshold, strings.Join(a.Channels, ","))
	}))
	switch drop {
	case "block":
	case "newest":
		if shedFlag {
			return errors.New("-shed replaces -drop newest; pick one")
		}
		opts = append(opts, runtime.WithDropPolicy(runtime.DropNewest))
	default:
		return fmt.Errorf("bad -drop %q (want block or newest)", drop)
	}
	if shedFlag {
		opts = append(opts, runtime.WithShedConfig(shed.Config{Seed: shedSeed}))
	}

	cfg := tenant.Config{
		MaxActive:            ff.maxActive,
		MaxSessionsPerTenant: ff.quota,
		RuntimeOptions:       opts,
		Logger:               logger,
	}
	var reg *tenant.Registry
	if ff.tenantDir != "" {
		if reg, err = tenant.OpenRegistry(ff.tenantDir); err != nil {
			return err
		}
		cfg.Loader = reg
	}

	// Resolve each named tenant's starting profile: the newest generation in
	// its registry lineage when one exists, else a fresh training run (which
	// is published into the lineage so restarts and watchers see it).
	names := splitTenants(ff.tenants)
	if len(names) == 0 && reg == nil {
		return errors.New("fleet mode needs -tenants or -tenant-dir")
	}
	cfg.Static = make(map[string]*profile.Profile, len(names))
	for _, name := range names {
		app, err := lookupApp(name)
		if err != nil {
			return err
		}
		if sf.enabled {
			// The SQL channel trains on the same traces the HMM trains on;
			// each named tenant's shard gets its own profile. Tenants first
			// seen on the wire (lazy loads) stay single-channel.
			traces, err := app.CollectTraces(collector.ModeADPROM)
			if err != nil {
				return fmt.Errorf("tenant %s: %w", name, err)
			}
			sqlProf, err := sf.trainFor(app, traces)
			if err != nil {
				return fmt.Errorf("tenant %s: %w", name, err)
			}
			if cfg.PerTenant == nil {
				cfg.PerTenant = map[string][]runtime.Option{}
			}
			cfg.PerTenant[name] = []runtime.Option{
				runtime.WithSQLChannel(sqlProf),
				runtime.WithFusion(sf.fusionConfig()),
			}
			fmt.Printf("tenant %s: sql channel: %s\n", name, sqlProf)
		}
		if reg != nil {
			if p, err := reg.LoadTenant(name); err == nil {
				cfg.Static[name] = p
				fmt.Printf("tenant %s: serving newest registry generation\n", name)
				continue
			}
		}
		fmt.Printf("tenant %s: training profile...\n", name)
		p, err := trainApp(app)
		if err != nil {
			return fmt.Errorf("tenant %s: %w", name, err)
		}
		cfg.Static[name] = p
		if reg != nil {
			if _, err := reg.Publish(name, p, "serve-startup"); err != nil {
				return fmt.Errorf("tenant %s: publishing: %w", name, err)
			}
		}
	}

	router, err := tenant.NewRouter(cfg)
	if err != nil {
		return err
	}
	defer router.Close()

	srv, err := ingest.NewServer(ingest.ServerConfig{Sink: router, Codec: codec, Logger: logger})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", ff.ingestAddr)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer srv.Close()
	fmt.Printf("ingest: listening on %s (codec %s)\n", ln.Addr(), codec)

	var httpSrv *http.Server
	if httpAddr != "" {
		hln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return err
		}
		httpSrv = &http.Server{Handler: fleetHandler(router, srv)}
		go func() { _ = httpSrv.Serve(hln) }()
		fmt.Printf("introspection: http://%s (/metrics /tenants /decisions?tenant=ID /traces?tenant=ID /traces/{id} /healthz /readyz /debug/pprof/)\n", hln.Addr())
	}

	// Hot-swap watchers: one per known tenant lineage, each feeding only its
	// tenant's shard. Tenants loaded lazily later are served at whatever
	// generation the load found; their lineage gains a watcher on restart.
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	var watchWG sync.WaitGroup
	if reg != nil {
		watched := map[string]bool{}
		known, _ := reg.Tenants()
		for _, name := range append(append([]string{}, names...), known...) {
			if watched[name] {
				continue
			}
			watched[name] = true
			dir, err := reg.TenantDir(name)
			if err != nil {
				return err
			}
			name := name
			watchWG.Add(1)
			go func() {
				defer watchWG.Done()
				_ = lifecycle.WatchDir(watchCtx, dir, watchEvery,
					func(path string, next *profile.Profile, err error) {
						if err != nil {
							fmt.Fprintf(os.Stderr, "tenant %s: skipping %s: %v\n", name, path, err)
							return
						}
						gen, err := router.SwapProfile(name, next)
						if err != nil {
							fmt.Fprintf(os.Stderr, "tenant %s: swap of %s refused: %v\n", name, path, err)
							return
						}
						fmt.Printf("tenant %s: %s live as generation %d\n", name, path, gen)
					})
			}()
		}
		fmt.Printf("watching %s every %v for published tenant generations\n", ff.tenantDir, watchEvery)
	}

	fmt.Printf("fleet serving %d tenants — SIGINT/SIGTERM to exit\n", len(cfg.Static))
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sigc:
	case err := <-serveErr:
		if err != nil {
			return err
		}
	}
	signal.Stop(sigc)

	stopWatch()
	watchWG.Wait()
	if httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = httpSrv.Shutdown(shutCtx)
		cancel()
	}
	srv.Close()
	if err := router.Close(); err != nil && !errors.Is(err, tenant.ErrClosed) {
		return err
	}
	fmt.Printf("ingest: %s\n", srv.Stats())
	for _, st := range router.StatsAll() {
		fmt.Println(st)
	}
	rs := router.Stats()
	fmt.Printf("router: tenants=%d loads=%d evictions=%d unknown=%d quota_rejected=%d\n",
		rs.ActiveTenants, rs.Loads, rs.Evictions, rs.UnknownTenant, rs.QuotaRejected)
	return nil
}

func splitTenants(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// fleetHandler is the fleet flavour of the introspection endpoint: the
// standard probe/pprof surface plus per-tenant metrics, a JSON tenant
// listing, and tenant-scoped decision provenance and traces. /traces/{id}
// falls through the catch-all to the base handler, which scans every
// resident shard for the ID; the /traces listing is overridden here because
// it needs a tenant to pick a shard.
func fleetHandler(router *tenant.Router, srv *ingest.Server) http.Handler {
	base := obsv.NewHandler(obsv.ServerConfig{
		Metrics: func(w io.Writer) error {
			if err := router.WritePrometheus(w); err != nil {
				return err
			}
			return srv.WritePrometheus(w)
		},
		TraceByID: router.TraceByID,
		Healthz:   func() error { return nil },
		Readyz:    router.Ready,
	})
	mux := http.NewServeMux()
	mux.Handle("/", base)
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, st := range router.StatsAll() {
			fmt.Fprintln(w, st)
		}
	})
	mux.HandleFunc("/decisions", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("tenant")
		if id == "" {
			http.Error(w, "missing tenant parameter", http.StatusBadRequest)
			return
		}
		ds := router.Decisions(id, 100)
		if ds == nil {
			ds = []obsv.Decision{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ds)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("tenant")
		if id == "" {
			http.Error(w, "missing tenant parameter", http.StatusBadRequest)
			return
		}
		trs := router.Traces(id, 100)
		if trs == nil {
			trs = []trace.Trace{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(trs)
	})
	return mux
}
