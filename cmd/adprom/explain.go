package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"adprom/internal/obsv"
	"adprom/internal/trace"
)

// cmdExplain reconstructs the forensic timeline behind one detection
// decision: every pipeline stage the op crossed (ingest, tenant routing,
// shed admission, per-channel scoring, fusion, sink delivery) with
// durations and the evidence each stage recorded. The key is either a trace
// ID (rendered directly) or a numeric alert sequence number, which is
// resolved through the decision log to the trace of the op that produced
// it. Live mode talks to a server's introspection endpoint; -log explains
// from a recorded /decisions JSON capture instead (judgements only — span
// timelines exist only on a server running with -trace).
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	httpAddr := fs.String("http", "localhost:9313", "introspection endpoint of the live server")
	tenantID := fs.String("tenant", "", "tenant scope on fleet servers (their /decisions and /traces listings require one)")
	logPath := fs.String("log", "", "explain from a recorded /decisions JSON capture instead of a live server")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: adprom explain [-http <addr> | -log <decisions.json>] [-tenant <id>] <alert-seq|trace-id>")
	}
	key := fs.Arg(0)
	if *logPath != "" {
		return explainLog(os.Stdout, *logPath, key)
	}
	return explainLive(os.Stdout, *httpAddr, *tenantID, key)
}

// explainLive renders the timeline from a running server: the decision log
// correlates a numeric alert seq to its trace ID, /traces/{id} supplies the
// span timeline, and every judgement sharing the trace is appended as
// evidence.
func explainLive(w io.Writer, addr, tenantID, key string) error {
	ds, dsErr := fetchDecisions(addr, tenantID)
	traceID := key
	if _, err := strconv.Atoi(key); err == nil {
		// A bare number is an alert sequence; only the decision log can map
		// it to the op's trace.
		if dsErr != nil {
			return fmt.Errorf("resolving alert seq %s needs the decision log: %w", key, dsErr)
		}
		d, err := decisionBySeq(ds, key)
		if err != nil {
			return err
		}
		if d.Trace == "" {
			return fmt.Errorf("decision seq %s carries no trace ID — is the server running with -trace?", key)
		}
		traceID = d.Trace
	}

	var tr trace.Trace
	if err := fetchJSON(traceURL(addr, traceID), &tr); err != nil {
		return fmt.Errorf("fetching trace %s: %w", traceID, err)
	}
	renderTrace(w, tr)
	if dsErr == nil {
		renderDecisions(w, correlate(ds, traceID))
	}
	return nil
}

// explainLog renders what a /decisions capture alone can prove: the
// judgement evidence for the requested alert, plus every other judgement
// recorded under the same trace ID.
func explainLog(w io.Writer, path, key string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var ds []obsv.Decision
	if err := json.Unmarshal(data, &ds); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var matched []obsv.Decision
	if _, err := strconv.Atoi(key); err == nil {
		d, err := decisionBySeq(ds, key)
		if err != nil {
			return err
		}
		if d.Trace != "" {
			matched = correlate(ds, d.Trace)
		} else {
			matched = []obsv.Decision{d}
		}
	} else {
		if matched = correlate(ds, key); len(matched) == 0 {
			return fmt.Errorf("no decision in %s references trace %s", path, key)
		}
	}
	fmt.Fprintf(w, "decision log capture %s (judgements only; span timelines live on a server running with -trace)\n", path)
	renderDecisions(w, matched)
	return nil
}

func fetchDecisions(addr, tenantID string) ([]obsv.Decision, error) {
	url := "http://" + addr + "/decisions?limit=0"
	if tenantID != "" {
		url += "&tenant=" + tenantID
	}
	var ds []obsv.Decision
	if err := fetchJSON(url, &ds); err != nil {
		return nil, err
	}
	return ds, nil
}

func traceURL(addr, id string) string { return "http://" + addr + "/traces/" + id }

func fetchJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, firstLine(body))
	}
	return json.Unmarshal(body, into)
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}

// decisionBySeq resolves a numeric alert seq against the decision log.
// Seq numbers are per-session, so a flagged match wins over sampled Normal
// judgements and the newest match wins overall (logs are newest-first).
func decisionBySeq(ds []obsv.Decision, key string) (obsv.Decision, error) {
	n, _ := strconv.Atoi(key)
	var fallback *obsv.Decision
	for i := range ds {
		if ds[i].Seq != n {
			continue
		}
		if ds[i].Flagged {
			return ds[i], nil
		}
		if fallback == nil {
			fallback = &ds[i]
		}
	}
	if fallback != nil {
		return *fallback, nil
	}
	return obsv.Decision{}, fmt.Errorf("no decision with seq %d in the log (alerts are always retained; raise -decisions capacity if the ring is small)", n)
}

// correlate returns every decision recorded under the trace, oldest first.
func correlate(ds []obsv.Decision, traceID string) []obsv.Decision {
	var out []obsv.Decision
	for _, d := range ds {
		if d.Trace == traceID {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].UnixNanos < out[j].UnixNanos })
	return out
}

// renderTrace prints the span timeline as an indented tree: each line is a
// stage with its offset from the op's start, its duration, and the
// attributes the stage recorded (scores, thresholds, margins, verdicts).
func renderTrace(w io.Writer, tr trace.Trace) {
	status := "healthy"
	if tr.Alert {
		status = "ALERT"
	}
	fmt.Fprintf(w, "trace %s  tenant=%s session=%s  %s\n", tr.ID, orDash(tr.Tenant), tr.Session, status)
	if len(tr.Spans) == 0 {
		fmt.Fprintln(w, "  (no spans recorded)")
		return
	}
	var origin int64
	for i, s := range tr.Spans {
		if i == 0 || s.Start < origin {
			origin = s.Start
		}
	}
	children := map[uint64][]int{}
	for i, s := range tr.Spans {
		children[s.Parent] = append(children[s.Parent], i)
	}
	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		idx := children[parent]
		sort.SliceStable(idx, func(a, b int) bool { return tr.Spans[idx[a]].Start < tr.Spans[idx[b]].Start })
		for _, i := range idx {
			s := tr.Spans[i]
			fmt.Fprintf(w, "  %-11s %-9s %s%s", "+"+shortDuration(s.Start-origin),
				shortDuration(s.Duration), indent(depth), s.Stage)
			for _, a := range s.Attrs {
				fmt.Fprintf(w, " %s=%s", a.Key, attrValue(a))
			}
			fmt.Fprintln(w)
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
	if tr.Dropped > 0 {
		fmt.Fprintf(w, "  (%d spans dropped at the per-trace cap)\n", tr.Dropped)
	}
}

// renderDecisions prints the judgement evidence correlated with a trace:
// per-channel scores against their thresholds (with the margin that made
// the call), the fused score when channels were combined, and the profile
// generation that judged the window.
func renderDecisions(w io.Writer, ds []obsv.Decision) {
	if len(ds) == 0 {
		fmt.Fprintln(w, "no correlated judgements in the decision log (healthy windows are sampled)")
		return
	}
	for _, d := range ds {
		verdict := "normal"
		if d.Flagged {
			verdict = d.Flag
		}
		if d.Shed {
			verdict = "shed"
		}
		fmt.Fprintf(w, "judgement seq=%d session=%s verdict=%s generation=%d\n",
			d.Seq, d.Session, verdict, d.Generation)
		if d.Shed {
			fmt.Fprintf(w, "  shed:  calls=%d session_total=%d risk=%.4f queue_occupancy=%.2f\n",
				d.ShedCalls, d.SessionShed, d.Risk, d.Occupancy)
			continue
		}
		fmt.Fprintf(w, "  hmm:   score=%.6f threshold=%.6f margin=%.6f", d.Score, d.Threshold, d.Threshold-d.Score)
		if d.ScoreErrorBound != 0 {
			fmt.Fprintf(w, " error_bound=%.3g", d.ScoreErrorBound)
		}
		fmt.Fprintln(w)
		if d.SQLThreshold != 0 || d.SQLScore != 0 {
			fmt.Fprintf(w, "  sql:   score=%.6f threshold=%.6f margin=%.6f\n",
				d.SQLScore, d.SQLThreshold, d.SQLThreshold-d.SQLScore)
		}
		if d.FusedScore != 0 {
			fmt.Fprintf(w, "  fused: score=%.6f channels=%s\n", d.FusedScore, joinOrDash(d.Channels))
		}
		if d.Label != "" || d.Caller != "" {
			fmt.Fprintf(w, "  call:  label=%s caller=%s\n", orDash(d.Label), orDash(d.Caller))
		}
	}
}

func indent(depth int) string {
	const pad = "                                "
	if depth *= 2; depth > len(pad) {
		depth = len(pad)
	}
	return pad[:depth]
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func joinOrDash(parts []string) string {
	if len(parts) == 0 {
		return "-"
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += "," + p
	}
	return out
}

// shortDuration renders nanoseconds with the readable truncation of
// time.Duration.String at each magnitude (1.234ms, 56µs, 2.5s).
func shortDuration(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(100 * time.Nanosecond).String()
	default:
		return d.String()
	}
}

// attrValue formats one span attribute. JSON round-trips turn int attrs
// into floats, so integral floats render without a fractional part.
func attrValue(a trace.Attr) string {
	switch v := a.Value().(type) {
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	case int64:
		return strconv.FormatInt(v, 10)
	case bool:
		return strconv.FormatBool(v)
	default:
		return a.Str
	}
}
