package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: adprom
cpu: Intel(R) Xeon(R)
BenchmarkRuntimeThroughput-4   	       3	  41243292 ns/op	    1201 B/op	       5 allocs/op	    291883 calls/s	     12.50 x_vs_batch_monitor	      4096 p50_latency_ns	     16384 p95_latency_ns	     32768 p99_latency_ns
BenchmarkInstrumentationOverhead-4 	       3	1620208058 ns/op	     21625 baseline_calls/s	     21607 calls/s	         0.08373 overhead_pct
PASS
ok  	adprom	2.573s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "RuntimeThroughput-4" || b.Pkg != "adprom" || b.Iterations != 3 {
		t.Fatalf("identity: %+v", b)
	}
	if b.NsPerOp != 41243292 || b.BytesPerOp != 1201 || b.AllocsPerOp != 5 {
		t.Fatalf("standard units: %+v", b)
	}
	if b.Metrics["calls/s"] != 291883 || b.Metrics["x_vs_batch_monitor"] != 12.5 {
		t.Fatalf("custom metrics: %+v", b.Metrics)
	}
	// The latency percentiles ride through the metrics map with their units
	// as keys, so the JSON report carries the histogram shape.
	for key, want := range map[string]float64{
		"p50_latency_ns": 4096,
		"p95_latency_ns": 16384,
		"p99_latency_ns": 32768,
	} {
		if got := b.Metrics[key]; got != want {
			t.Errorf("Metrics[%q] = %g, want %g", key, got, want)
		}
	}
	ov := rep.Benchmarks[1]
	if ov.Name != "InstrumentationOverhead-4" {
		t.Fatalf("second benchmark: %+v", ov)
	}
	if got := ov.Metrics["overhead_pct"]; got != 0.08373 {
		t.Errorf("Metrics[overhead_pct] = %g, want 0.08373", got)
	}
	if got := ov.Metrics["baseline_calls/s"]; got != 21625 {
		t.Errorf("Metrics[baseline_calls/s] = %g, want 21625", got)
	}
}

// TestCheckMetricMax exercises the absolute-ceiling gate: min-of-N
// aggregation, pass/fail around the ceiling, multiple clauses, and the
// matched-nothing error that keeps a renamed benchmark from disarming it.
func TestCheckMetricMax(t *testing.T) {
	rep := &Report{Benchmarks: []Result{
		{Name: "TracingOverhead-4", Metrics: map[string]float64{"overhead_pct": 7.2}},
		{Name: "TracingOverhead-4", Metrics: map[string]float64{"overhead_pct": 3.1}},
		{Name: "TracingOverhead-4", Metrics: map[string]float64{"overhead_pct": 4.9}},
		{Name: "RuntimeThroughput-4", Metrics: map[string]float64{"calls/s": 250000}},
	}}

	// Min of {7.2, 3.1, 4.9} = 3.1 ≤ 5: noise above the ceiling is forgiven
	// when any run came in under budget.
	if ok, err := checkMetricMax(rep, "TracingOverhead:overhead_pct=5"); err != nil || !ok {
		t.Errorf("min-of-N under ceiling: ok=%v err=%v", ok, err)
	}
	// Ceiling below the best run fails.
	if ok, err := checkMetricMax(rep, "TracingOverhead:overhead_pct=3"); err != nil || ok {
		t.Errorf("ceiling below min: ok=%v err=%v", ok, err)
	}
	// Multiple clauses: one failing clause fails the gate.
	if ok, err := checkMetricMax(rep, "RuntimeThroughput:calls/s=1000000,TracingOverhead:overhead_pct=3"); err != nil || ok {
		t.Errorf("mixed clauses: ok=%v err=%v", ok, err)
	}
	// A clause matching nothing is an error, not a silent pass.
	if _, err := checkMetricMax(rep, "Vanished:overhead_pct=5"); err == nil {
		t.Error("clause matching no benchmark must error")
	}
	// Malformed clauses are rejected.
	for _, spec := range []string{"noseparator", "Name:metriconly", "Name:metric=NaNx", "(bad[:metric=5"} {
		if _, err := checkMetricMax(rep, spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseBenchRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",             // no iterations
		"BenchmarkX abc",         // bad iterations
		"BenchmarkX 3 10",        // value without unit
		"BenchmarkX 3 ten ns/op", // bad value
	} {
		if _, err := parseBench(line); err == nil {
			t.Errorf("parseBench(%q) accepted", line)
		}
	}
}
