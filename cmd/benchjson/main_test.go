package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: adprom
cpu: Intel(R) Xeon(R)
BenchmarkRuntimeThroughput-4   	       3	  41243292 ns/op	    1201 B/op	       5 allocs/op	    291883 calls/s	     12.50 x_vs_batch_monitor	      4096 p50_latency_ns	     16384 p95_latency_ns	     32768 p99_latency_ns
BenchmarkInstrumentationOverhead-4 	       3	1620208058 ns/op	     21625 baseline_calls/s	     21607 calls/s	         0.08373 overhead_pct
PASS
ok  	adprom	2.573s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "RuntimeThroughput-4" || b.Pkg != "adprom" || b.Iterations != 3 {
		t.Fatalf("identity: %+v", b)
	}
	if b.NsPerOp != 41243292 || b.BytesPerOp != 1201 || b.AllocsPerOp != 5 {
		t.Fatalf("standard units: %+v", b)
	}
	if b.Metrics["calls/s"] != 291883 || b.Metrics["x_vs_batch_monitor"] != 12.5 {
		t.Fatalf("custom metrics: %+v", b.Metrics)
	}
	// The latency percentiles ride through the metrics map with their units
	// as keys, so the JSON report carries the histogram shape.
	for key, want := range map[string]float64{
		"p50_latency_ns": 4096,
		"p95_latency_ns": 16384,
		"p99_latency_ns": 32768,
	} {
		if got := b.Metrics[key]; got != want {
			t.Errorf("Metrics[%q] = %g, want %g", key, got, want)
		}
	}
	ov := rep.Benchmarks[1]
	if ov.Name != "InstrumentationOverhead-4" {
		t.Fatalf("second benchmark: %+v", ov)
	}
	if got := ov.Metrics["overhead_pct"]; got != 0.08373 {
		t.Errorf("Metrics[overhead_pct] = %g, want 0.08373", got)
	}
	if got := ov.Metrics["baseline_calls/s"]; got != 21625 {
		t.Errorf("Metrics[baseline_calls/s] = %g, want 21625", got)
	}
}

func TestParseBenchRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",             // no iterations
		"BenchmarkX abc",         // bad iterations
		"BenchmarkX 3 10",        // value without unit
		"BenchmarkX 3 ten ns/op", // bad value
	} {
		if _, err := parseBench(line); err == nil {
			t.Errorf("parseBench(%q) accepted", line)
		}
	}
}
