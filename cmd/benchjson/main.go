// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark report, so CI can archive machine-readable performance numbers
// next to the human-readable log.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . > bench.txt
//	benchjson -o BENCH_runtime.json < bench.txt
//
// Standard measurements (ns/op, B/op, allocs/op) become typed fields; any
// custom b.ReportMetric units are kept in a metrics map — throughput
// (calls/s, x_vs_batch_monitor), the observe-path latency percentiles
// (p50_latency_ns, p95_latency_ns, p99_latency_ns), and the observability
// layer's cost (overhead_pct) all flow through unchanged.
//
// With -baseline, benchjson instead compares the report parsed from stdin
// against a committed baseline JSON and exits 1 when any benchmark present
// in both regressed in ns/op by more than -tolerance (default 0.20, i.e.
// 20%). -filter restricts the comparison to benchmark names matching a
// regexp — the CI bench-smoke gate:
//
//	go test -run '^$' -bench 'ScorerLogProb|StreamPush' -benchtime 3x ./internal/hmm |
//	    benchjson -baseline BENCH_runtime.json -filter 'ScorerLogProb|StreamPush'
//
// Benchmarks only on one side are reported but never fail the gate, so
// adding or retiring a benchmark does not break CI.
//
// -metric-max asserts absolute ceilings on custom metrics, independent of any
// baseline: each comma-separated clause is nameRegexp:metric=max, and the
// gate fails when the min-of-N value of that metric across matching
// benchmarks exceeds the ceiling — the tracing-overhead budget:
//
//	go test -run '^$' -bench TracingOverhead -count 3 . |
//	    benchjson -metric-max 'TracingOverhead:overhead_pct=5'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file benchjson writes. Input may concatenate several
// packages' bench output; each result carries the pkg it came from.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline report JSON; compare instead of converting, exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression vs -baseline (0.20 = 20%)")
	filter := flag.String("filter", "", "regexp restricting which benchmark names -baseline compares")
	metricMax := flag.String("metric-max", "", "comma-separated nameRegexp:metric=max ceilings on custom metrics (min-of-N); exit 1 when exceeded")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *baseline != "" || *metricMax != "" {
		ok := true
		if *baseline != "" {
			cmpOK, err := compare(rep, *baseline, *tolerance, *filter)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			ok = ok && cmpOK
		}
		if *metricMax != "" {
			maxOK, err := checkMetricMax(rep, *metricMax)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			ok = ok && maxOK
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// minNs folds a report into the fastest ns/op seen per benchmark name.
// Both sides of a comparison are expected to run with -count > 1; min-of-N
// is the standard way to strip scheduler noise from a shared CI box, since
// a benchmark can run unluckily slow but never unluckily fast.
func minNs(rep *Report) map[string]float64 {
	m := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		if b.NsPerOp <= 0 {
			continue
		}
		if best, seen := m[b.Name]; !seen || b.NsPerOp < best {
			m[b.Name] = b.NsPerOp
		}
	}
	return m
}

// compare checks the freshly parsed report against a committed baseline and
// prints one line per benchmark compared. It returns ok=false when any
// benchmark present in both reports (and matching the filter, if given) got
// slower in min-of-N ns/op by more than the tolerance fraction. Names on
// only one side are noted but never fail the gate.
func compare(cur *Report, baselinePath string, tolerance float64, filter string) (bool, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	var re *regexp.Regexp
	if filter != "" {
		if re, err = regexp.Compile(filter); err != nil {
			return false, fmt.Errorf("filter: %w", err)
		}
	}
	baseNs, curNs := minNs(&base), minNs(cur)
	names := make([]string, 0, len(curNs))
	for name := range curNs {
		if re == nil || re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	ok, compared := true, 0
	for _, name := range names {
		now := curNs[name]
		was, found := baseNs[name]
		if !found {
			fmt.Printf("  ?   %-40s %12.0f ns/op  (no baseline)\n", name, now)
			continue
		}
		compared++
		delta := now/was - 1
		mark := "ok"
		if delta > tolerance {
			mark, ok = "FAIL", false
		}
		fmt.Printf("%4s  %-40s %12.0f ns/op  vs %12.0f  (%+.1f%%, tolerance %.0f%%)\n",
			mark, name, now, was, 100*delta, 100*tolerance)
	}
	if compared == 0 {
		return false, fmt.Errorf("no benchmarks in common with baseline %s (filter %q)", baselinePath, filter)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "benchjson: benchmark regression beyond tolerance")
	}
	return ok, nil
}

// checkMetricMax enforces absolute ceilings on custom metrics. Each clause
// is nameRegexp:metric=max; the value held against the ceiling is the
// minimum across every matching benchmark result (min-of-N, same noise
// policy as the ns/op gate: a run can be unluckily slow, never unluckily
// fast). A clause matching no result with that metric is an error, so a
// renamed benchmark cannot silently disarm the gate.
func checkMetricMax(cur *Report, spec string) (bool, error) {
	ok := true
	for _, clause := range strings.Split(spec, ",") {
		name, rest, found := strings.Cut(clause, ":")
		if !found {
			return false, fmt.Errorf("metric-max clause %q: want nameRegexp:metric=max", clause)
		}
		metric, maxStr, found := strings.Cut(rest, "=")
		if !found {
			return false, fmt.Errorf("metric-max clause %q: want nameRegexp:metric=max", clause)
		}
		ceiling, err := strconv.ParseFloat(maxStr, 64)
		if err != nil {
			return false, fmt.Errorf("metric-max clause %q: %w", clause, err)
		}
		re, err := regexp.Compile(name)
		if err != nil {
			return false, fmt.Errorf("metric-max clause %q: %w", clause, err)
		}
		best, matched := 0.0, false
		for _, b := range cur.Benchmarks {
			if !re.MatchString(b.Name) {
				continue
			}
			v, has := b.Metrics[metric]
			if !has {
				continue
			}
			if !matched || v < best {
				best, matched = v, true
			}
		}
		if !matched {
			return false, fmt.Errorf("metric-max clause %q matched no benchmark reporting %s", clause, metric)
		}
		mark := "ok"
		if best > ceiling {
			mark, ok = "FAIL", false
		}
		fmt.Printf("%4s  %-40s %12.2f %s  (ceiling %.2f, min of %d runs)\n",
			mark, name, best, metric, ceiling, countMatches(cur, re, metric))
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "benchjson: metric ceiling exceeded")
	}
	return ok, nil
}

func countMatches(rep *Report, re *regexp.Regexp, metric string) int {
	n := 0
	for _, b := range rep.Benchmarks {
		if _, has := b.Metrics[metric]; has && re.MatchString(b.Name) {
			n++
		}
	}
	return n
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
			r.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	return rep, sc.Err()
}

// parseBench decodes one result line: a name, an iteration count, then
// value/unit pairs.
//
//	BenchmarkRuntimeThroughput-4  3  41243292 ns/op  1201 B/op  5 allocs/op  291883 calls/s
func parseBench(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("want name and iterations")
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations: %w", err)
	}
	r := Result{Name: strings.TrimPrefix(fields[0], "Benchmark"), Iterations: iters}
	pairs := fields[2:]
	if len(pairs)%2 != 0 {
		return Result{}, fmt.Errorf("odd value/unit tail")
	}
	for i := 0; i < len(pairs); i += 2 {
		v, err := strconv.ParseFloat(pairs[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("value %q: %w", pairs[i], err)
		}
		switch unit := pairs[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, nil
}
