// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark report, so CI can archive machine-readable performance numbers
// next to the human-readable log.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . > bench.txt
//	benchjson -o BENCH_runtime.json < bench.txt
//
// Standard measurements (ns/op, B/op, allocs/op) become typed fields; any
// custom b.ReportMetric units are kept in a metrics map — throughput
// (calls/s, x_vs_batch_monitor), the observe-path latency percentiles
// (p50_latency_ns, p95_latency_ns, p99_latency_ns), and the observability
// layer's cost (overhead_pct) all flow through unchanged.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file benchjson writes. Input may concatenate several
// packages' bench output; each result carries the pkg it came from.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
			r.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	return rep, sc.Err()
}

// parseBench decodes one result line: a name, an iteration count, then
// value/unit pairs.
//
//	BenchmarkRuntimeThroughput-4  3  41243292 ns/op  1201 B/op  5 allocs/op  291883 calls/s
func parseBench(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("want name and iterations")
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations: %w", err)
	}
	r := Result{Name: strings.TrimPrefix(fields[0], "Benchmark"), Iterations: iters}
	pairs := fields[2:]
	if len(pairs)%2 != 0 {
		return Result{}, fmt.Errorf("odd value/unit tail")
	}
	for i := 0; i < len(pairs); i += 2 {
		v, err := strconv.ParseFloat(pairs[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("value %q: %w", pairs[i], err)
		}
		switch unit := pairs[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, nil
}
