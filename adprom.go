// Package adprom is the public facade of the AD-PROM reproduction: an
// anomaly-detection system protecting relational databases against data
// leakage by application programs (Fadolalkarim, Bertino, Sallam — ICDE
// 2020).
//
// AD-PROM builds a behavioural profile of a database client application by
// combining static analysis (control-flow graphs, data-dependency labelling
// of output statements, call-transition matrices aggregated over the call
// graph) with dynamic analysis (a hidden Markov model initialised from the
// static matrix and trained on library-call traces). At run time, sliding
// windows of library calls are scored against the model; low-probability
// windows raise alerts classified as Anomalous, DL (data leak, connected to
// the originating query), or OutOfContext (a known call from an unexpected
// function).
//
// # Quick start
//
//	app := adprom.HospitalApp()                     // a bundled client app
//	traces, _ := app.CollectTraces(adprom.ModeADPROM)
//	prof, _, _ := adprom.Train(app.Prog, traces, adprom.TrainOptions{})
//	mon := adprom.NewMonitor(prof, nil)
//	alerts := mon.ObserveTrace(suspiciousTrace)
//
// The facade re-exports the supported surface of the internal packages; see
// examples/ for complete programs and internal/experiments for the paper's
// evaluation harness.
package adprom

import (
	"adprom/internal/attack"
	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/dataset"
	"adprom/internal/detect"
	"adprom/internal/hmm"
	"adprom/internal/interp"
	"adprom/internal/ir"
	"adprom/internal/minidb"
	"adprom/internal/profile"
	"adprom/internal/qsig"
)

// Program building and execution.
type (
	// Program is an application program in AD-PROM's IR.
	Program = ir.Program
	// Builder constructs programs; see NewProgram.
	Builder = ir.Builder
	// Interp executes programs; see NewInterp.
	Interp = interp.Interp
	// World is the execution environment (database, terminal, files, net).
	World = interp.World
	// Database is the embedded relational engine.
	Database = minidb.Database
)

// Collection and profiles.
type (
	// Trace is one run's recorded library-call sequence.
	Trace = collector.Trace
	// Call is one recorded library call.
	Call = collector.Call
	// Mode selects the collector strategy.
	Mode = collector.Mode
	// Profile is a trained application behaviour profile.
	Profile = profile.Profile
	// TrainOptions tunes profile construction.
	TrainOptions = profile.Options
	// HMMOptions tunes the Baum–Welch training inside TrainOptions.Train.
	HMMOptions = hmm.TrainOptions
	// StaticAnalysis is the Analyzer's output (DDG, CTMs, pCTM, timings).
	StaticAnalysis = core.StaticAnalysis
)

// Detection.
type (
	// Monitor replays or observes executions against a profile.
	Monitor = core.Monitor
	// Alert is one detection finding.
	Alert = detect.Alert
	// Flag classifies an alert.
	Flag = detect.Flag
	// AlertSink receives alerts (the security administrator).
	AlertSink = core.AlertSink
	// AlertFunc adapts a function to AlertSink.
	AlertFunc = core.AlertFunc
)

// Datasets and attacks.
type (
	// App bundles a program, database seeder, and test cases.
	App = dataset.App
	// TestCase is one input vector.
	TestCase = dataset.TestCase
	// Attack is one adversary scenario.
	Attack = attack.Attack
)

// Collector modes.
const (
	// ModeADPROM records call labels and callers only (the paper's
	// collector).
	ModeADPROM = collector.ModeADPROM
	// ModeLtrace emulates ltrace's costly argument capture.
	ModeLtrace = collector.ModeLtrace
)

// Alert flags.
const (
	FlagNormal       = detect.FlagNormal
	FlagAnomalous    = detect.FlagAnomalous
	FlagDL           = detect.FlagDL
	FlagOutOfContext = detect.FlagOutOfContext
)

// Expr is an IR expression; build them with the constructors below.
type Expr = ir.Expr

// Expression constructors for program building: S (string literal), I
// (integer literal), V (variable), Cat (string concatenation), arithmetic,
// comparisons, and At (row indexing). They alias internal/ir's constructors
// so example programs read like the paper's C snippets.
func S(v string) Expr    { return ir.S(v) }
func I(v int64) Expr     { return ir.I(v) }
func V(name string) Expr { return ir.V(name) }
func Cat(p ...Expr) Expr { return ir.Cat(p...) }
func Add(l, r Expr) Expr { return ir.Add(l, r) }
func Sub(l, r Expr) Expr { return ir.Sub(l, r) }
func Mul(l, r Expr) Expr { return ir.Mul(l, r) }
func Div(l, r Expr) Expr { return ir.Div(l, r) }
func Mod(l, r Expr) Expr { return ir.Mod(l, r) }
func Eq(l, r Expr) Expr  { return ir.Eq(l, r) }
func Ne(l, r Expr) Expr  { return ir.Ne(l, r) }
func Lt(l, r Expr) Expr  { return ir.Lt(l, r) }
func Le(l, r Expr) Expr  { return ir.Le(l, r) }
func Gt(l, r Expr) Expr  { return ir.Gt(l, r) }
func Ge(l, r Expr) Expr  { return ir.Ge(l, r) }
func At(x, i Expr) Expr  { return ir.At(x, i) }

// NewProgram starts building a program named name (entry function "main").
func NewProgram(name string) *Builder { return ir.NewBuilder(name) }

// NewDatabase returns an empty embedded database.
func NewDatabase() *Database { return minidb.New() }

// NewWorld wraps a database (nil for a fresh one) in an execution world.
func NewWorld(db *Database) *World { return interp.NewWorld(db) }

// NewInterp builds an interpreter for prog in world.
func NewInterp(prog *Program, world *World) *Interp {
	return interp.New(prog, world, interp.Options{})
}

// Analyze runs AD-PROM's static phase: DDG labelling, per-function CTMs, and
// the aggregated pCTM.
func Analyze(prog *Program) (*StaticAnalysis, error) { return core.Analyze(prog) }

// Train runs the full training phase: static analysis followed by HMM
// initialisation, optional state reduction, and Baum–Welch over the traces.
func Train(prog *Program, traces []Trace, opts TrainOptions) (*Profile, *StaticAnalysis, error) {
	return core.Train(prog, traces, opts)
}

// NewMonitor builds the detection phase around a trained profile; sink may
// be nil.
func NewMonitor(p *Profile, sink AlertSink) *Monitor { return core.NewMonitor(p, sink) }

// NewCollector returns a calls collector for the given mode; attach it with
// Interp.AddHook(c.Hook()).
func NewCollector(mode Mode) *collector.Collector { return collector.New(mode, nil) }

// Bundled applications of the paper's CA-dataset (Table III).
func HospitalApp() *App    { return dataset.AppH() }
func BankingApp() *App     { return dataset.AppB() }
func SupermarketApp() *App { return dataset.AppS() }

// SIRApps returns the four SIR-style programs of Table IV.
func SIRApps() []*App { return dataset.SIRApps() }

// BankingAttacks returns the five Table V attacks against the banking app.
func BankingAttacks() []Attack { return attack.AppBAttacks() }

// TautologyPayload is the SQL-injection input of attack 5.
const TautologyPayload = attack.TautologyPayload

// QueryAuditor is the §VII query-signature mitigation: it learns the
// signatures of normal queries (and their issuing sites) and flags queries
// whose shape or site was never seen — catching same-selectivity query swaps
// that leave the call trace unchanged.
type QueryAuditor = qsig.Auditor

// NewQueryAuditor returns an empty query-signature auditor; feed it
// World.Queries from training runs via Learn and check later runs with
// Check.
func NewQueryAuditor() *QueryAuditor { return qsig.NewAuditor() }
