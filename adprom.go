// Package adprom is the public facade of the AD-PROM reproduction: an
// anomaly-detection system protecting relational databases against data
// leakage by application programs (Fadolalkarim, Bertino, Sallam — ICDE
// 2020).
//
// AD-PROM builds a behavioural profile of a database client application by
// combining static analysis (control-flow graphs, data-dependency labelling
// of output statements, call-transition matrices aggregated over the call
// graph) with dynamic analysis (a hidden Markov model initialised from the
// static matrix and trained on library-call traces). At run time, sliding
// windows of library calls are scored against the model; low-probability
// windows raise alerts classified as Anomalous, DL (data leak, connected to
// the originating query), or OutOfContext (a known call from an unexpected
// function).
//
// # Quick start
//
//	app := adprom.HospitalApp()                     // a bundled client app
//	traces, _ := app.CollectTraces(adprom.ModeADPROM)
//	prof, _, _ := adprom.Train(app.Prog, traces, adprom.TrainOptions{})
//
//	// One stream: a Monitor, configured with functional options.
//	mon := adprom.NewMonitor(prof, adprom.WithSink(sink))
//	alerts := mon.ObserveTrace(suspiciousTrace)
//
//	// Many concurrent streams: a Runtime multiplexes per-session call
//	// streams onto a pool of detection workers over the shared profile.
//	rt := adprom.NewRuntime(prof, adprom.WithWorkers(8))
//	defer rt.Close()
//	rt.Session("client-42").Observe(call)
//
// The facade re-exports the supported surface of the internal packages; see
// examples/ for complete programs and internal/experiments for the paper's
// evaluation harness.
package adprom

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"time"

	"adprom/internal/attack"
	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/dataset"
	"adprom/internal/detect"
	"adprom/internal/hmm"
	"adprom/internal/interp"
	"adprom/internal/ir"
	"adprom/internal/lifecycle"
	"adprom/internal/metrics"
	"adprom/internal/minidb"
	"adprom/internal/obsv"
	"adprom/internal/profile"
	"adprom/internal/qsig"
	"adprom/internal/runtime"
	"adprom/internal/shed"
	"adprom/internal/sqlchan"
	"adprom/internal/trace"
)

// Program building and execution.
type (
	// Program is an application program in AD-PROM's IR.
	Program = ir.Program
	// Builder constructs programs; see NewProgram.
	Builder = ir.Builder
	// Interp executes programs; see NewInterp.
	Interp = interp.Interp
	// World is the execution environment (database, terminal, files, net).
	World = interp.World
	// Database is the embedded relational engine.
	Database = minidb.Database
)

// Collection and profiles.
type (
	// Trace is one run's recorded library-call sequence.
	Trace = collector.Trace
	// Call is one recorded library call.
	Call = collector.Call
	// Mode selects the collector strategy.
	Mode = collector.Mode
	// Profile is a trained application behaviour profile.
	Profile = profile.Profile
	// TrainOptions tunes profile construction.
	TrainOptions = profile.Options
	// HMMOptions tunes the Baum–Welch training inside TrainOptions.Train.
	HMMOptions = hmm.TrainOptions
	// StaticAnalysis is the Analyzer's output (DDG, CTMs, pCTM, timings).
	StaticAnalysis = core.StaticAnalysis
)

// Detection.
type (
	// Monitor replays or observes executions against a profile.
	Monitor = core.Monitor
	// Alert is one detection finding.
	Alert = detect.Alert
	// Flag classifies an alert.
	Flag = detect.Flag
	// AlertSink receives alerts (the security administrator).
	AlertSink = core.AlertSink
	// AlertFunc adapts a function to AlertSink.
	AlertFunc = core.AlertFunc
)

// Concurrent serving.
type (
	// Runtime multiplexes many concurrent per-session call streams onto a
	// pool of detection workers sharing one profile; see NewRuntime.
	Runtime = runtime.Runtime
	// Session is one monitored call stream inside a Runtime.
	Session = runtime.Session
	// RuntimeStats is a point-in-time snapshot of a Runtime's counters.
	RuntimeStats = runtime.Stats
	// DropPolicy selects a Runtime's full-queue behaviour (Block or
	// DropNewest).
	DropPolicy = runtime.DropPolicy
	// JudgeHook observes (or vetoes) every completed window judgement; a
	// non-nil error quarantines the session. See WithJudgeHook.
	JudgeHook = runtime.JudgeHook
	// ShedConfig tunes the ShedByRisk admission controller: occupancy
	// watermarks, the guarantee band, risk-signal memories, and the seed
	// that makes shed decisions reproducible. See WithShedConfig.
	ShedConfig = shed.Config
	// ShedSnapshot is a point-in-time view of the admission controller:
	// shed counts, risk mass admitted vs shed, and the estimated
	// miss probability. See Runtime.ShedSnapshot.
	ShedSnapshot = shed.Snapshot
	// BatchShedError reports a partially or fully rejected ObserveBatch
	// under DropNewest or ShedByRisk: Shed of Batch calls were rejected,
	// the rest were admitted in order. It wraps ErrDropped (and ErrShed
	// when risk-aware admission did the shedding); match with errors.As
	// for exact counts or errors.Is(err, ErrDropped) for the class.
	BatchShedError = runtime.BatchShedError
)

// Observability: decision provenance, latency histograms, and the live
// introspection endpoint (see NewIntrospectionHandler).
type (
	// Decision is the provenance record of one window judgement: session,
	// window offset, score vs threshold, verdict, profile generation, and —
	// for alerts — the triggering call's label and caller. Retrieve recent
	// ones with Runtime.Decisions; tune retention with WithDecisionLog.
	Decision = obsv.Decision
	// RuntimeHistograms bundles the runtime's latency histograms (per-call
	// scoring, flush/close, sink delivery); see Runtime.Histograms.
	RuntimeHistograms = runtime.Histograms
	// LatencyHistogram is one power-of-two-bucket latency histogram snapshot
	// with Mean and Quantile estimators.
	LatencyHistogram = metrics.HistogramSnapshot
)

// Profile lifecycle: drift detection, background retraining, and zero-
// downtime hot-swap (Runtime.SwapProfile).
type (
	// Lifecycle watches the live judgement stream for concept drift, retrains
	// in the background from judged-Normal traces, and hot-swaps the new
	// profile generation into its Runtime; see NewLifecycle.
	Lifecycle = lifecycle.Manager
	// LifecycleConfig tunes a Lifecycle.
	LifecycleConfig = lifecycle.Config
	// DriftConfig tunes the lifecycle's drift detector.
	DriftConfig = lifecycle.DriftConfig
	// DriftState is a snapshot of the drift detector.
	DriftState = lifecycle.DriftState
	// LifecycleStats is a snapshot of the lifecycle counters.
	LifecycleStats = metrics.LifecycleSnapshot
	// RetrainOptions tunes the lifecycle's background retraining pass.
	RetrainOptions = profile.RetrainOptions
	// ProfileRegistry is the versioned on-disk store of profile generations;
	// see OpenProfileRegistry.
	ProfileRegistry = lifecycle.Registry
	// RegistryEntry describes one persisted profile generation.
	RegistryEntry = lifecycle.Entry
)

// Profile serialisation errors (Profile.Save / LoadProfile); match with
// errors.Is.
var (
	// ErrCorruptProfile reports a truncated, bit-flipped, or structurally
	// unusable profile stream.
	ErrCorruptProfile = profile.ErrCorrupt
	// ErrIncompatibleProfile reports a profile written by a newer format
	// version than this build understands.
	ErrIncompatibleProfile = profile.ErrIncompatible
)

// Runtime drop policies.
const (
	// Block applies backpressure: Observe waits for queue space.
	Block = runtime.Block
	// DropNewest sheds the incoming call and returns ErrDropped.
	DropNewest = runtime.DropNewest
	// ShedByRisk sheds by session risk under pressure: high-risk sessions
	// (recent alerts, drifting scores, sensitive-table touches) are always
	// scored, low-risk ones are thinned probabilistically as queues fill.
	// Shed calls return ErrShed. Configure with WithShedConfig.
	ShedByRisk = runtime.ShedByRisk
)

// Runtime ingest errors.
var (
	// ErrClosed reports an operation on a closed Runtime or Session.
	ErrClosed = runtime.ErrClosed
	// ErrDropped reports a call shed by the DropNewest policy.
	ErrDropped = runtime.ErrDropped
	// ErrShed reports a call rejected by the ShedByRisk admission
	// controller. errors.Is(ErrShed, ErrDropped) is true, so callers that
	// only distinguish "not scored" from "scored" need one check.
	ErrShed = runtime.ErrShed
	// ErrSessionFailed reports a session quarantined after a detection
	// failure (engine panic or judge-hook error); other sessions are
	// unaffected.
	ErrSessionFailed = runtime.ErrSessionFailed
)

// Datasets and attacks.
type (
	// App bundles a program, database seeder, and test cases.
	App = dataset.App
	// TestCase is one input vector.
	TestCase = dataset.TestCase
	// Attack is one adversary scenario.
	Attack = attack.Attack
)

// Collector modes.
const (
	// ModeADPROM records call labels and callers only (the paper's
	// collector).
	ModeADPROM = collector.ModeADPROM
	// ModeLtrace emulates ltrace's costly argument capture.
	ModeLtrace = collector.ModeLtrace
)

// Alert flags.
const (
	FlagNormal       = detect.FlagNormal
	FlagAnomalous    = detect.FlagAnomalous
	FlagDL           = detect.FlagDL
	FlagOutOfContext = detect.FlagOutOfContext
)

// Expr is an IR expression; build them with the constructors below.
type Expr = ir.Expr

// Expression constructors for program building: S (string literal), I
// (integer literal), V (variable), Cat (string concatenation), arithmetic,
// comparisons, and At (row indexing). They alias internal/ir's constructors
// so example programs read like the paper's C snippets.
func S(v string) Expr    { return ir.S(v) }
func I(v int64) Expr     { return ir.I(v) }
func V(name string) Expr { return ir.V(name) }
func Cat(p ...Expr) Expr { return ir.Cat(p...) }
func Add(l, r Expr) Expr { return ir.Add(l, r) }
func Sub(l, r Expr) Expr { return ir.Sub(l, r) }
func Mul(l, r Expr) Expr { return ir.Mul(l, r) }
func Div(l, r Expr) Expr { return ir.Div(l, r) }
func Mod(l, r Expr) Expr { return ir.Mod(l, r) }
func Eq(l, r Expr) Expr  { return ir.Eq(l, r) }
func Ne(l, r Expr) Expr  { return ir.Ne(l, r) }
func Lt(l, r Expr) Expr  { return ir.Lt(l, r) }
func Le(l, r Expr) Expr  { return ir.Le(l, r) }
func Gt(l, r Expr) Expr  { return ir.Gt(l, r) }
func Ge(l, r Expr) Expr  { return ir.Ge(l, r) }
func At(x, i Expr) Expr  { return ir.At(x, i) }

// NewProgram starts building a program named name (entry function "main").
func NewProgram(name string) *Builder { return ir.NewBuilder(name) }

// NewDatabase returns an empty embedded database.
func NewDatabase() *Database { return minidb.New() }

// NewWorld wraps a database (nil for a fresh one) in an execution world.
func NewWorld(db *Database) *World { return interp.NewWorld(db) }

// NewInterp builds an interpreter for prog in world.
func NewInterp(prog *Program, world *World) *Interp {
	return interp.New(prog, world, interp.Options{})
}

// Analyze runs AD-PROM's static phase: DDG labelling, per-function CTMs, and
// the aggregated pCTM.
func Analyze(prog *Program) (*StaticAnalysis, error) { return core.Analyze(prog) }

// Train runs the full training phase: static analysis followed by HMM
// initialisation, optional state reduction, and Baum–Welch over the traces.
func Train(prog *Program, traces []Trace, opts TrainOptions) (*Profile, *StaticAnalysis, error) {
	return core.Train(prog, traces, opts)
}

// TrainContext is Train with cancellation: a cancelled context aborts the
// Baum–Welch loop between iterations and surfaces ctx.Err() as the error.
func TrainContext(ctx context.Context, prog *Program, traces []Trace, opts TrainOptions) (*Profile, *StaticAnalysis, error) {
	return core.TrainContext(ctx, prog, traces, opts)
}

// Scorer configuration, shared by monitors and runtimes.
type (
	// ScorerMode selects the HMM scoring kernel detection runs on; the zero
	// value is ScorerExact. See WithScorerMode.
	ScorerMode = hmm.ScorerMode
)

// ScorerExact is the default scoring mode: the full transition matrix,
// bit-identical to the batch forward pass used during training.
var ScorerExact = hmm.ScorerExact

// ScorerTopK returns the approximate scoring mode that prunes each HMM
// transition row to its k largest entries (renormalised). Scoring cost per
// call drops from O(N²) to O(N·k); every judgement carries a sound
// per-window bound on the score error it may have introduced
// (Alert.ScoreErrorBound, Decision.ScoreErrorBound), so the approximation is
// visible rather than silent. Panics if k < 1.
func ScorerTopK(k int) ScorerMode { return hmm.ScorerTopK(k) }

// MonitorOption configures NewMonitor. Options that make sense for both
// single-stream monitors and concurrent runtimes (WithScorerMode) satisfy
// MonitorOption and RuntimeOption at once.
type MonitorOption interface{ applyMonitor(*monitorConfig) }

// RuntimeOption configures NewRuntime.
type RuntimeOption interface{ runtimeOption() runtime.Option }

// monitorOptionFunc adapts a config mutation to MonitorOption.
type monitorOptionFunc func(*monitorConfig)

func (f monitorOptionFunc) applyMonitor(c *monitorConfig) { f(c) }

// runtimeOptionWrap adapts an internal runtime.Option to RuntimeOption.
type runtimeOptionWrap struct{ o runtime.Option }

func (w runtimeOptionWrap) runtimeOption() runtime.Option { return w.o }

type monitorConfig struct {
	sink       AlertSink
	threshold  *float64
	window     int
	mode       ScorerMode
	sqlProfile *sqlchan.Profile
	fusion     FusionConfig
}

// ScorerModeOption is the option WithScorerMode returns; it configures both
// NewMonitor and NewRuntime.
type ScorerModeOption struct{ m ScorerMode }

func (s ScorerModeOption) applyMonitor(c *monitorConfig) { c.mode = s.m }
func (s ScorerModeOption) runtimeOption() runtime.Option { return runtime.WithScorerMode(s.m) }

// WithScorerMode selects the HMM scoring kernel: ScorerExact (the default)
// or ScorerTopK(k) for approximate scoring with a reported error bound. The
// returned option is accepted by both NewMonitor and NewRuntime:
//
//	mon := adprom.NewMonitor(prof, adprom.WithScorerMode(adprom.ScorerTopK(8)))
//	rt := adprom.NewRuntime(prof, adprom.WithScorerMode(adprom.ScorerTopK(8)))
func WithScorerMode(m ScorerMode) ScorerModeOption { return ScorerModeOption{m: m} }

// Two-channel detection: the SQL-behaviour channel and score fusion.
type (
	// SQLProfile is a trained SQL-behaviour profile: per-session signature
	// n-grams, result-cardinality distributions, and sensitive-column access
	// sets, calibrated to a per-window log-likelihood threshold the same way
	// the HMM channel is. Train one with TrainSQLProfile.
	SQLProfile = sqlchan.Profile
	// SQLOptions tunes TrainSQLProfile (window length, threshold slack,
	// smoothing, sensitive columns).
	SQLOptions = sqlchan.Options
	// FusionConfig tunes how the HMM and SQL channels' verdicts combine:
	// per-channel weights and the fused OR-escalation slack. The zero value
	// selects equal weights with a 0.05 slack.
	FusionConfig = detect.FusionConfig
)

// Channel provenance names recorded in Alert.Channels / Decision.Channels.
const (
	ChannelHMM   = detect.ChannelHMM
	ChannelSQL   = detect.ChannelSQL
	ChannelFused = detect.ChannelFused
)

// TrainSQLProfile trains the SQL-behaviour detection channel from the same
// collected traces the HMM trains on: each trace's query-bearing calls
// (Call.SQL/Call.Rows) become one training session. sensitiveColumns lists
// column names whose first access by a novel query upgrades an alert to DL;
// it may be empty. Returns sqlchan.ErrNoQueries when the traces carry no
// query data.
func TrainSQLProfile(traces []Trace, opts SQLOptions) (*SQLProfile, error) {
	return sqlchan.Train(traces, opts)
}

// SQLChannelOption is the option WithSQLChannel returns; it configures both
// NewMonitor and NewRuntime.
type SQLChannelOption struct{ p *sqlchan.Profile }

func (s SQLChannelOption) applyMonitor(c *monitorConfig) { c.sqlProfile = s.p }
func (s SQLChannelOption) runtimeOption() runtime.Option { return runtime.WithSQLChannel(s.p) }

// WithSQLChannel attaches the SQL-behaviour detection channel to a monitor
// or runtime: every session scores its query stream against prof alongside
// the HMM, and alerts carry per-channel provenance (Alert.Channels). Without
// this option detection is single-channel and alert histories are unchanged
// bit for bit. Tune the combination rule with WithFusion.
//
//	sqlProf, _ := adprom.TrainSQLProfile(traces, adprom.SQLOptions{})
//	rt := adprom.NewRuntime(prof, adprom.WithSQLChannel(sqlProf))
func WithSQLChannel(p *SQLProfile) SQLChannelOption { return SQLChannelOption{p: p} }

// FusionOption is the option WithFusion returns; it configures both
// NewMonitor and NewRuntime.
type FusionOption struct{ fc FusionConfig }

func (f FusionOption) applyMonitor(c *monitorConfig) { c.fusion = f.fc }
func (f FusionOption) runtimeOption() runtime.Option { return runtime.WithFusion(f.fc) }

// WithFusion tunes the weighted log-linear fusion of the HMM and SQL
// channels (no effect without WithSQLChannel). Zero fields keep the
// documented defaults; a negative EscalationSlack disables fused escalation,
// leaving the pure OR of the per-channel thresholds.
func WithFusion(fc FusionConfig) FusionOption { return FusionOption{fc: fc} }

// WithSink routes the monitor's alerts to sink (the security administrator).
func WithSink(sink AlertSink) MonitorOption {
	return monitorOptionFunc(func(c *monitorConfig) { c.sink = sink })
}

// WithThreshold overrides the profile's selected detection threshold
// (per-symbol log probability).
func WithThreshold(t float64) MonitorOption {
	return monitorOptionFunc(func(c *monitorConfig) { c.threshold = &t })
}

// WithWindowSize overrides the profile's sliding-window length n.
func WithWindowSize(n int) MonitorOption {
	return monitorOptionFunc(func(c *monitorConfig) { c.window = n })
}

// NewMonitor builds the detection phase around a trained profile. With no
// options it uses the profile's threshold and window length and keeps alerts
// in the monitor's history only; nil options are ignored, so the legacy
// NewMonitor(p, nil) spelling still compiles and behaves identically.
func NewMonitor(p *Profile, opts ...MonitorOption) *Monitor {
	var c monitorConfig
	for _, o := range opts {
		if o != nil {
			o.applyMonitor(&c)
		}
	}
	m := core.NewMonitor(p, c.sink)
	if c.window > 0 {
		m.Engine().SetWindowLen(c.window)
	}
	if c.threshold != nil {
		m.Engine().SetThreshold(*c.threshold)
	}
	m.Engine().SetScorerMode(c.mode)
	if c.sqlProfile != nil {
		m.Engine().SetSQLChannel(sqlchan.NewScorer(c.sqlProfile), c.fusion)
	}
	return m
}

// NewMonitorWithSink builds a monitor with a positional alert sink.
//
// Deprecated: this is a thin shim kept for source compatibility and slated
// for removal; use NewMonitor(p, WithSink(sink)).
func NewMonitorWithSink(p *Profile, sink AlertSink) *Monitor {
	return NewMonitor(p, WithSink(sink))
}

// NewRuntime builds a concurrent multi-stream detection runtime over a
// trained profile: sessions obtained from Runtime.Session are scored in
// parallel by a worker pool sharing the profile. Nil options are ignored.
// Close it when done.
func NewRuntime(p *Profile, opts ...RuntimeOption) *Runtime {
	ros := make([]runtime.Option, 0, len(opts))
	for _, o := range opts {
		if o != nil {
			ros = append(ros, o.runtimeOption())
		}
	}
	return runtime.New(p, ros...)
}

// WithWorkers sets the runtime's number of detection workers (default
// GOMAXPROCS).
func WithWorkers(n int) RuntimeOption { return runtimeOptionWrap{runtime.WithWorkers(n)} }

// WithQueueDepth bounds each runtime worker's ingest queue (default 256).
func WithQueueDepth(d int) RuntimeOption { return runtimeOptionWrap{runtime.WithQueueDepth(d)} }

// WithDropPolicy selects the runtime's full-queue behaviour: Block
// (backpressure, the default), DropNewest (indiscriminate load shedding),
// or ShedByRisk (risk-aware admission; WithShedConfig selects it with
// explicit tuning).
func WithDropPolicy(p DropPolicy) RuntimeOption {
	return runtimeOptionWrap{runtime.WithDropPolicy(p)}
}

// WithShedConfig selects the ShedByRisk drop policy with explicit tuning:
// occupancy watermarks, guarantee band, risk memories, deterministic seed,
// and administrator-marked sensitive call labels (see NewSensitiveTables /
// SensitiveLabelsFor for deriving those from query signatures). The zero
// ShedConfig applies the documented defaults:
//
//	rt := adprom.NewRuntime(prof, adprom.WithShedConfig(adprom.ShedConfig{Seed: 1}))
func WithShedConfig(sc ShedConfig) RuntimeOption {
	return runtimeOptionWrap{runtime.WithShedConfig(sc)}
}

// WithSessionSink routes every runtime session's alerts to fn, tagged with
// the session id. Delivery is asynchronous and isolated: fn runs on a
// dedicated sink goroutine (never on detection workers), panics inside it are
// recovered and counted, and deliveries that cannot be handed off within the
// sink timeout are shed and counted rather than stalling detection.
func WithSessionSink(fn func(session string, a Alert)) RuntimeOption {
	return runtimeOptionWrap{runtime.WithAlertFunc(runtime.AlertFunc(fn))}
}

// WithSinkBuffer bounds the runtime's asynchronous alert-delivery queue
// (default 1024). When the sink cannot keep up, overflowing alerts are shed
// and counted in RuntimeStats.SinkDropped; detection itself never blocks on
// the sink.
func WithSinkBuffer(n int) RuntimeOption { return runtimeOptionWrap{runtime.WithSinkBuffer(n)} }

// WithSinkTimeout bounds how long the runtime waits to hand one alert to the
// sink before shedding it (default 1s).
func WithSinkTimeout(d time.Duration) RuntimeOption {
	return runtimeOptionWrap{runtime.WithSinkTimeout(d)}
}

// WithJudgeHook installs a hook observing every completed window judgement
// (session id, window end sequence, score, flagged). A non-nil error
// quarantines that session — Observe/Flush return ErrSessionFailed — without
// affecting other sessions. The hook runs on worker goroutines and must be
// safe for concurrent use.
func WithJudgeHook(fn JudgeHook) RuntimeOption { return runtimeOptionWrap{runtime.WithJudgeHook(fn)} }

// WithLogger routes the runtime's structured events (worker restarts, session
// quarantines, profile swaps) to l as slog records. Nil leaves event logging
// off; the hot path is never logged.
func WithLogger(l *slog.Logger) RuntimeOption { return runtimeOptionWrap{runtime.WithLogger(l)} }

// WithDecisionLog sizes the runtime's decision-provenance ring: the last
// capacity judgement records are retained (default 1024; negative disables
// provenance entirely), with unflagged judgements sampled one-in-sampleEvery
// (default 16; 1 records every judgement). Alerts are always recorded.
// Retrieve records with Runtime.Decisions or the introspection endpoint's
// /decisions.
func WithDecisionLog(capacity, sampleEvery int) RuntimeOption {
	return runtimeOptionWrap{runtime.WithDecisionLog(capacity, sampleEvery)}
}

// WithTracing enables end-to-end decision tracing: every observe op gets a
// trace whose spans cover shed admission, engine scoring (with per-channel
// judgement and fusion spans on flagged windows), and async sink delivery.
// The runtime retains up to capacity healthy traces (sampled one-in-
// sampleEvery) plus up to capacity alert traces (always kept); capacity ≤ 0
// leaves tracing off, with zero hot-path cost and a decision log
// bit-identical to a trace-free build. Retrieve traces with Runtime.Traces /
// Runtime.TraceByID, the introspection endpoint's /traces routes, or render
// one with `adprom explain`.
func WithTracing(capacity, sampleEvery int) RuntimeOption {
	return runtimeOptionWrap{runtime.WithTracing(capacity, sampleEvery)}
}

// DecisionTrace is one completed end-to-end decision trace: a root ingest or
// observe span plus child spans for each pipeline stage the op crossed.
type DecisionTrace = trace.Trace

// TraceSpan is one completed pipeline stage within a DecisionTrace.
type TraceSpan = trace.Span

// TraceContext carries wire-level trace metadata (client trace ID, decode
// time, remote, codec) into Runtime.BeginTrace.
type TraceContext = trace.Context

// NewIntrospectionHandler builds the live introspection endpoint for a
// runtime: GET /metrics (Prometheus text format, including the lifecycle
// manager's counters when lc is non-nil), /decisions (recent provenance as
// JSON, ?limit=N), /traces and /traces/{id} (retained decision traces as
// JSON when WithTracing is on), /healthz and /readyz (200/503 probes), and
// the net/http/pprof suite under /debug/pprof/. Serve it on a private
// address:
//
//	go http.ListenAndServe("localhost:9313", adprom.NewIntrospectionHandler(rt, nil))
func NewIntrospectionHandler(rt *Runtime, lc *Lifecycle) http.Handler {
	return obsv.NewHandler(obsv.ServerConfig{
		Metrics: func(w io.Writer) error {
			if err := rt.WritePrometheus(w); err != nil {
				return err
			}
			if lc != nil {
				return obsv.WriteLifecycleProm(w, lc.Stats())
			}
			return nil
		},
		Decisions: rt.Decisions,
		Traces:    rt.Traces,
		TraceByID: rt.TraceByID,
		// Liveness is the process answering at all; readiness is the runtime
		// accepting ingest with a published profile generation.
		Healthz: func() error { return nil },
		Readyz:  rt.Ready,
	})
}

// NewLifecycle builds a profile-lifecycle manager; wire it into a runtime
// with WithLifecycle, then Start it:
//
//	mgr := adprom.NewLifecycle(adprom.LifecycleConfig{})
//	rt := adprom.NewRuntime(prof, adprom.WithLifecycle(mgr))
//	mgr.Start()
//	defer mgr.Stop()
//
// Feed judged-Normal traces to mgr.RecordTrace; when the drift watcher
// confirms the served profile has gone stale, the manager retrains in the
// background and hot-swaps the next generation in with zero downtime.
func NewLifecycle(cfg LifecycleConfig) *Lifecycle { return lifecycle.NewManager(cfg) }

// WithLifecycle binds a lifecycle manager to the runtime under construction:
// the manager's drift watcher taps every completed window judgement, and a
// confirmed drift verdict leads to a background retrain and a
// Runtime.SwapProfile. One manager manages one runtime.
func WithLifecycle(m *Lifecycle) RuntimeOption {
	if m == nil {
		return nil
	}
	return runtimeOptionWrap{runtime.Options(
		runtime.WithJudgeObserver(m.Observe),
		runtime.WithAttach(m.Bind),
	)}
}

// OpenProfileRegistry opens (creating if needed) the versioned profile store
// rooted at dir: one file per published generation plus a manifest, all
// written atomically.
func OpenProfileRegistry(dir string) (*ProfileRegistry, error) {
	return lifecycle.OpenRegistry(dir)
}

// LoadProfile reads a profile saved with Profile.Save, accepting both the
// current versioned format and legacy headerless streams. Corrupt input
// fails with ErrCorruptProfile, a newer format with ErrIncompatibleProfile.
func LoadProfile(r io.Reader) (*Profile, error) { return profile.Load(r) }

// NewCollector returns a calls collector for the given mode; attach it with
// Interp.AddHook(c.Hook()).
func NewCollector(mode Mode) *collector.Collector { return collector.New(mode, nil) }

// Bundled applications of the paper's CA-dataset (Table III).
func HospitalApp() *App    { return dataset.AppH() }
func BankingApp() *App     { return dataset.AppB() }
func SupermarketApp() *App { return dataset.AppS() }

// SIRApps returns the four SIR-style programs of Table IV.
func SIRApps() []*App { return dataset.SIRApps() }

// BankingAttacks returns the five Table V attacks against the banking app.
func BankingAttacks() []Attack { return attack.AppBAttacks() }

// SQLChannelBankingAttacks returns the three HMM-evading adversaries of the
// two-channel corpus — low-and-slow exfiltration, cardinality mimicry, and
// UNION exfiltration — each engineered to keep the call trace inside the
// trained distribution so only the SQL-behaviour channel can flag it.
func SQLChannelBankingAttacks() []Attack { return attack.SQLChannelAttacks() }

// TautologyPayload is the SQL-injection input of attack 5.
const TautologyPayload = attack.TautologyPayload

// QueryAuditor is the §VII query-signature mitigation: it learns the
// signatures of normal queries (and their issuing sites) and flags queries
// whose shape or site was never seen — catching same-selectivity query swaps
// that leave the call trace unchanged.
type QueryAuditor = qsig.Auditor

// NewQueryAuditor returns an empty query-signature auditor; feed it
// World.Queries from training runs via Learn and check later runs with
// Check.
func NewQueryAuditor() *QueryAuditor { return qsig.NewAuditor() }

// SensitiveTables is a set of table names whose queries mark a session as
// touching sensitive data; the ShedByRisk admission controller keeps such
// sessions out of the shed pool.
type SensitiveTables = qsig.SensitiveTables

// NewSensitiveTables builds a sensitive-table set from names
// (case-insensitive).
func NewSensitiveTables(names ...string) SensitiveTables {
	return qsig.NewSensitiveTables(names...)
}

// SensitiveLabelsFor derives the call labels that issued queries against
// sensitive tables from a training run's query log (World.Queries); the
// result plugs into ShedConfig.SensitiveLabels.
func SensitiveLabelsFor(records []interp.QueryRecord, tables SensitiveTables) map[string]bool {
	return qsig.SensitiveLabels(records, tables)
}
