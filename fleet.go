package adprom

// Fleet serving: one process protecting many application programs at once.
// A Fleet routes per-tenant session streams onto per-tenant profile shards
// (each an independent Runtime), loading profiles lazily from a
// TenantRegistry and evicting cold shards under an LRU cap; an IngestServer
// feeds it call events from remote collectors over TCP in NDJSON or binary
// frames. See cmd/adprom serve -tenants / -ingest-addr for the packaged
// daemon.
//
//	reg, _ := adprom.OpenTenantRegistry("/var/lib/adprom/tenants")
//	fleet, _ := adprom.NewFleet(
//		adprom.WithTenantRegistry(reg),
//		adprom.WithTenantSessionQuota(512),
//	)
//	defer fleet.Close()
//	srv, _ := adprom.NewIngestServer(fleet, adprom.IngestAuto, nil)
//	go srv.ListenAndServe("127.0.0.1:9090")
//	defer srv.Close()

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strconv"

	"adprom/internal/ingest"
	"adprom/internal/obsv"
	"adprom/internal/runtime"
	"adprom/internal/tenant"
)

// Multi-tenant fleet serving.
type (
	// Fleet routes per-tenant sessions to per-tenant profile shards, each
	// wrapping its own Runtime; see NewFleet.
	Fleet = tenant.Router
	// TenantShard is one resident tenant inside a Fleet.
	TenantShard = tenant.Shard
	// TenantStats pairs a tenant id with its shard's runtime stats; see
	// Fleet.TenantStats and Fleet.StatsAll.
	TenantStats = tenant.Stats
	// FleetStats is the router-level counter snapshot (resident shards,
	// loads, evictions, refusals); see Fleet.Stats.
	FleetStats = tenant.RouterStats
	// TenantLoader lazily resolves tenant ids to trained profiles.
	TenantLoader = tenant.Loader
	// TenantLoaderFunc adapts a function to TenantLoader.
	TenantLoaderFunc = tenant.LoaderFunc
	// TenantRegistry is the on-disk fleet profile store: one versioned
	// lifecycle registry per tenant under a common root; see
	// OpenTenantRegistry.
	TenantRegistry = tenant.Registry
	// IngestServer accepts collector connections over TCP and streams their
	// events into a Fleet; see NewIngestServer.
	IngestServer = ingest.Server
	// IngestStats is a snapshot of an IngestServer's counters.
	IngestStats = ingest.ServerStats
	// IngestCodec selects the wire format an IngestServer accepts.
	IngestCodec = ingest.Codec
	// IngestEvent is one decoded ingest operation; exported for custom
	// senders via EncodeIngestFrame / EncodeIngestNDJSON.
	IngestEvent = ingest.Event
	// IngestKind discriminates IngestEvent operations.
	IngestKind = ingest.Kind
)

// Fleet routing errors; match with errors.Is.
var (
	// ErrUnknownTenant reports events for a tenant this fleet does not
	// protect (no static profile, no registry lineage).
	ErrUnknownTenant = tenant.ErrUnknownTenant
	// ErrTenantQuota reports a session refused by the per-tenant session
	// quota; existing sessions keep working.
	ErrTenantQuota = tenant.ErrTenantQuota
	// ErrCorruptFrame reports a malformed ingest frame or NDJSON line.
	ErrCorruptFrame = ingest.ErrFrameCorrupt
	// ErrIncompatibleFrame reports an ingest frame written by a newer wire
	// version than this build understands.
	ErrIncompatibleFrame = ingest.ErrFrameIncompatible
)

// Ingest wire formats.
const (
	// IngestAuto sniffs each connection: binary frames by their magic,
	// anything else as NDJSON.
	IngestAuto = ingest.CodecAuto
	// IngestNDJSON accepts newline-delimited JSON events only.
	IngestNDJSON = ingest.CodecNDJSON
	// IngestBinary accepts length-prefixed binary frames only.
	IngestBinary = ingest.CodecBinary

	// IngestObserve / IngestFlush / IngestClose are the IngestEvent kinds.
	IngestObserve = ingest.KindObserve
	IngestFlush   = ingest.KindFlush
	IngestClose   = ingest.KindClose
)

// FleetOption configures NewFleet.
type FleetOption func(*tenant.Config)

// WithTenants registers static tenants: each id serves the given pre-trained
// profile, resident from first use. Composes with WithTenantRegistry /
// WithTenantLoader (static entries win).
func WithTenants(profiles map[string]*Profile) FleetOption {
	return func(c *tenant.Config) {
		if c.Static == nil {
			c.Static = make(map[string]*Profile, len(profiles))
		}
		for id, p := range profiles {
			c.Static[id] = p
		}
	}
}

// WithTenant registers one static tenant.
func WithTenant(id string, p *Profile) FleetOption {
	return func(c *tenant.Config) {
		if c.Static == nil {
			c.Static = make(map[string]*Profile)
		}
		c.Static[id] = p
	}
}

// WithTenantLoader installs the lazy profile resolver consulted for tenants
// without a static profile.
func WithTenantLoader(l TenantLoader) FleetOption {
	return func(c *tenant.Config) { c.Loader = l }
}

// WithTenantRegistry is WithTenantLoader over an on-disk fleet store: each
// tenant's newest published generation loads on first route.
func WithTenantRegistry(reg *TenantRegistry) FleetOption {
	return func(c *tenant.Config) { c.Loader = reg }
}

// WithMaxActiveTenants bounds resident shards (default 64): loading one past
// the cap evicts the least-recently-routed tenant, draining its runtime.
// Negative disables eviction.
func WithMaxActiveTenants(n int) FleetOption {
	return func(c *tenant.Config) { c.MaxActive = n }
}

// WithTenantSessionQuota caps concurrent sessions per tenant (0 = unlimited);
// sessions past the cap are refused with ErrTenantQuota so one noisy
// application cannot starve the rest of the fleet.
func WithTenantSessionQuota(n int) FleetOption {
	return func(c *tenant.Config) { c.MaxSessionsPerTenant = n }
}

// WithShardOptions applies runtime options (workers, queue depth, drop/shed
// policy, scorer mode, sinks, ...) to every tenant shard. Nil options are
// ignored.
func WithShardOptions(opts ...RuntimeOption) FleetOption {
	return func(c *tenant.Config) {
		for _, o := range opts {
			if o != nil {
				c.RuntimeOptions = append(c.RuntimeOptions, o.runtimeOption())
			}
		}
	}
}

// WithTenantOverride extends WithShardOptions for one tenant — the
// per-tenant tuning seam (a risky tenant gets a shallow queue and
// ShedByRisk, a critical one more workers). Applied after the fleet-wide
// shard options.
func WithTenantOverride(id string, opts ...RuntimeOption) FleetOption {
	return func(c *tenant.Config) {
		if c.PerTenant == nil {
			c.PerTenant = make(map[string][]runtime.Option)
		}
		for _, o := range opts {
			if o != nil {
				c.PerTenant[id] = append(c.PerTenant[id], o.runtimeOption())
			}
		}
	}
}

// WithEvictionHook observes each LRU eviction with the departing tenant's
// final runtime stats.
func WithEvictionHook(fn func(id string, final RuntimeStats)) FleetOption {
	return func(c *tenant.Config) { c.OnEvict = fn }
}

// WithFleetLogger routes the fleet's structured events (loads, evictions,
// quota refusals) to l.
func WithFleetLogger(l *slog.Logger) FleetOption {
	return func(c *tenant.Config) { c.Logger = l }
}

// NewFleet builds a multi-tenant serving fleet. At least one of WithTenants
// / WithTenant / WithTenantLoader / WithTenantRegistry must be given; nil
// options are ignored. Close it when done — closing drains every resident
// shard.
func NewFleet(opts ...FleetOption) (*Fleet, error) {
	var cfg tenant.Config
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return tenant.NewRouter(cfg)
}

// OpenTenantRegistry opens (creating if needed) the on-disk fleet profile
// store rooted at dir: one versioned profile lineage per tenant, published
// atomically. Pass it to WithTenantRegistry, and publish new generations
// with TenantRegistry.Publish (or by training into the tenant's
// subdirectory, which a serving daemon's watcher hot-swaps in).
func OpenTenantRegistry(dir string) (*TenantRegistry, error) {
	return tenant.OpenRegistry(dir)
}

// ParseIngestCodec maps a flag value ("auto", "ndjson", "binary") to an
// IngestCodec.
func ParseIngestCodec(s string) (IngestCodec, error) { return ingest.ParseCodec(s) }

// NewIngestServer builds the fleet's TCP front door: collector connections
// stream call events in the given codec (IngestAuto sniffs per connection),
// demultiplexed by tenant id into the fleet. Backpressure is per connection
// — a tenant whose shard queues fill under Block stalls only the
// connections feeding it, and shed/quota refusals are counted without
// severing the stream. Start it with ListenAndServe (or Serve on an
// existing listener); Close it before the fleet.
func NewIngestServer(f *Fleet, codec IngestCodec, logger *slog.Logger) (*IngestServer, error) {
	return ingest.NewServer(ingest.ServerConfig{Sink: f, Codec: codec, Logger: logger})
}

// NewIngestHandler builds the HTTP flavour of ingest: POST bodies carrying
// event batches (Content-Type application/x-ndjson for NDJSON,
// application/octet-stream for binary frames) are decoded into the fleet.
// Mount it wherever the operator's HTTP surface lives:
//
//	mux.Handle("/ingest", adprom.NewIngestHandler(fleet, 0))
func NewIngestHandler(f *Fleet, maxBody int64) http.Handler {
	return ingest.Handler(f, maxBody)
}

// EncodeIngestFrame appends the binary wire encoding of e to dst — the
// collector-side sender for the binary codec.
func EncodeIngestFrame(dst []byte, e IngestEvent) ([]byte, error) {
	return ingest.EncodeFrame(dst, e)
}

// EncodeIngestNDJSON appends the NDJSON wire encoding of e (one line) to
// dst.
func EncodeIngestNDJSON(dst []byte, e IngestEvent) ([]byte, error) {
	return ingest.EncodeNDJSON(dst, e)
}

// NewFleetIntrospectionHandler builds the live introspection endpoint for a
// fleet: GET /metrics (per-tenant Prometheus families plus the ingest
// server's counters when srv is non-nil), /tenants (per-tenant stats as
// JSON), /decisions?tenant=ID&limit=N (a tenant's recent judgement
// provenance), /healthz and /readyz, and the net/http/pprof suite. Serve it
// on a private address.
func NewFleetIntrospectionHandler(f *Fleet, srv *IngestServer) http.Handler {
	base := obsv.NewHandler(obsv.ServerConfig{
		Metrics: func(w io.Writer) error {
			if err := f.WritePrometheus(w); err != nil {
				return err
			}
			if srv != nil {
				return srv.WritePrometheus(w)
			}
			return nil
		},
		Healthz: func() error { return nil },
		Readyz:  f.Ready,
	})
	mux := http.NewServeMux()
	mux.Handle("/", base)
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(f.StatsAll())
	})
	mux.HandleFunc("/decisions", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("tenant")
		if id == "" {
			http.Error(w, "missing tenant parameter", http.StatusBadRequest)
			return
		}
		limit := 100
		if s := r.URL.Query().Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad limit: "+err.Error(), http.StatusBadRequest)
				return
			}
			limit = n
		}
		ds := f.Decisions(id, limit)
		if ds == nil {
			ds = []Decision{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ds)
	})
	return mux
}
