package adprom

import (
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the public API end to end: build a program,
// run it, train, and detect the Figure 1 selectivity attack.
func TestFacadeQuickstart(t *testing.T) {
	build := func(where string) *Program {
		b := NewProgram("facade")
		m := b.Func("main")
		e := m.Block()
		loop := m.Block()
		body := m.Block()
		done := m.Block()
		e.CallTo("conn", "PQconnectdb")
		e.CallTo("res", "PQexec", V("conn"), S("SELECT * FROM t WHERE "+where))
		e.CallTo("n", "PQntuples", V("res"))
		e.Assign("i", I(0))
		e.Goto(loop)
		loop.If(Lt(V("i"), V("n")), body, done)
		body.CallTo("x", "PQgetvalue", V("res"), V("i"), I(0))
		body.Call("printf", S("%s"), V("x"))
		body.Assign("i", Add(V("i"), I(1)))
		body.Goto(loop)
		done.Ret()
		return b.MustBuild()
	}

	db := NewDatabase()
	db.MustExec("CREATE TABLE t (a INT)")
	for i := 0; i < 6; i++ {
		db.MustExec("INSERT INTO t VALUES (" + string(rune('0'+i)) + ")")
	}

	run := func(p *Program) Trace {
		world := NewWorld(db)
		world.ResetIO()
		ip := NewInterp(p, world)
		col := NewCollector(ModeADPROM)
		ip.AddHook(col.Hook())
		if _, err := ip.Run(); err != nil {
			t.Fatal(err)
		}
		return col.Trace()
	}

	normal := build("a = 3")
	var traces []Trace
	for i := 0; i < 6; i++ {
		traces = append(traces, run(normal))
	}
	prof, sa, err := Train(normal, traces, TrainOptions{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if sa.PCTM == nil || prof.Threshold >= 0 {
		t.Fatal("training artefacts missing")
	}

	if alerts := NewMonitor(prof, nil).ObserveTrace(run(normal)); len(alerts) != 0 {
		t.Fatalf("normal run alerted: %+v", alerts)
	}

	var got []Alert
	sink := AlertFunc(func(a Alert) { got = append(got, a) })
	mon := NewMonitor(prof, sink)
	all := mon.ObserveTrace(run(build("a >= 0")))
	if len(all) == 0 {
		t.Fatal("selectivity attack not detected")
	}
	dl := false
	for _, a := range all {
		if a.Flag == FlagDL && len(a.Origins) > 0 {
			dl = true
		}
	}
	if !dl {
		t.Error("no DL alert with origins")
	}
	if len(got) == 0 {
		t.Error("sink not invoked")
	}
}

func TestFacadeBundledApps(t *testing.T) {
	names := map[string]*App{
		"apph": HospitalApp(),
		"appb": BankingApp(),
		"apps": SupermarketApp(),
	}
	for want, app := range names {
		if app.Name != want {
			t.Errorf("app name %q, want %q", app.Name, want)
		}
	}
	if len(SIRApps()) != 4 {
		t.Errorf("SIRApps = %d", len(SIRApps()))
	}
	if len(BankingAttacks()) != 5 {
		t.Errorf("BankingAttacks = %d", len(BankingAttacks()))
	}
	if !strings.Contains(TautologyPayload, "OR") {
		t.Errorf("TautologyPayload = %q", TautologyPayload)
	}
}
