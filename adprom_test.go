package adprom

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFacadeQuickstart exercises the public API end to end: build a program,
// run it, train, and detect the Figure 1 selectivity attack.
func TestFacadeQuickstart(t *testing.T) {
	build := func(where string) *Program {
		b := NewProgram("facade")
		m := b.Func("main")
		e := m.Block()
		loop := m.Block()
		body := m.Block()
		done := m.Block()
		e.CallTo("conn", "PQconnectdb")
		e.CallTo("res", "PQexec", V("conn"), S("SELECT * FROM t WHERE "+where))
		e.CallTo("n", "PQntuples", V("res"))
		e.Assign("i", I(0))
		e.Goto(loop)
		loop.If(Lt(V("i"), V("n")), body, done)
		body.CallTo("x", "PQgetvalue", V("res"), V("i"), I(0))
		body.Call("printf", S("%s"), V("x"))
		body.Assign("i", Add(V("i"), I(1)))
		body.Goto(loop)
		done.Ret()
		return b.MustBuild()
	}

	db := NewDatabase()
	db.MustExec("CREATE TABLE t (a INT)")
	for i := 0; i < 6; i++ {
		db.MustExec("INSERT INTO t VALUES (" + string(rune('0'+i)) + ")")
	}

	run := func(p *Program) Trace {
		world := NewWorld(db)
		world.ResetIO()
		ip := NewInterp(p, world)
		col := NewCollector(ModeADPROM)
		ip.AddHook(col.Hook())
		if _, err := ip.Run(); err != nil {
			t.Fatal(err)
		}
		return col.Trace()
	}

	normal := build("a = 3")
	var traces []Trace
	for i := 0; i < 6; i++ {
		traces = append(traces, run(normal))
	}
	prof, sa, err := Train(normal, traces, TrainOptions{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if sa.PCTM == nil || prof.Threshold >= 0 {
		t.Fatal("training artefacts missing")
	}

	if alerts := NewMonitor(prof, nil).ObserveTrace(run(normal)); len(alerts) != 0 {
		t.Fatalf("normal run alerted: %+v", alerts)
	}

	var got []Alert
	sink := AlertFunc(func(a Alert) { got = append(got, a) })
	mon := NewMonitor(prof, WithSink(sink))
	all := mon.ObserveTrace(run(build("a >= 0")))
	if len(all) == 0 {
		t.Fatal("selectivity attack not detected")
	}
	dl := false
	for _, a := range all {
		if a.Flag == FlagDL && len(a.Origins) > 0 {
			dl = true
		}
	}
	if !dl {
		t.Error("no DL alert with origins")
	}
	if len(got) == 0 {
		t.Error("sink not invoked")
	}
}

// TestFacadeOptions covers the functional-option surface: monitor options,
// the deprecated positional-sink alias, and the concurrent Runtime.
func TestFacadeOptions(t *testing.T) {
	app := HospitalApp()
	traces, err := app.CollectTraces(ModeADPROM)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := Train(app.Prog, traces, TrainOptions{Train: HMMOptions{MaxIters: 4}})
	if err != nil {
		t.Fatal(err)
	}

	// WithThreshold(0) forces every window below threshold; WithWindowSize
	// shrinks the window so a short trace still completes several of them.
	mon := NewMonitor(prof, WithThreshold(0), WithWindowSize(5))
	if mon.Engine().Threshold() != 0 || mon.Engine().WindowLen() != 5 {
		t.Fatalf("options not applied: threshold=%v window=%d",
			mon.Engine().Threshold(), mon.Engine().WindowLen())
	}
	if alerts := mon.ObserveTrace(traces[0]); len(alerts) == 0 {
		t.Fatal("threshold 0 raised no alerts")
	}

	var got []Alert
	dep := NewMonitor(prof, WithSink(AlertFunc(func(a Alert) { got = append(got, a) })), WithThreshold(0))
	if alerts := dep.ObserveTrace(traces[0]); len(alerts) == 0 || len(got) != len(alerts) {
		t.Fatalf("WithSink: %d alerts, %d via sink", len(alerts), len(got))
	}
	// The deprecated shim must keep compiling and behaving as
	// NewMonitor(p, WithSink(sink)) until removal.
	if shim := NewMonitorWithSink(prof, nil); shim == nil || shim.Engine() == nil {
		t.Fatal("NewMonitorWithSink shim broken")
	}

	var mu sync.Mutex
	perSession := map[string]int{}
	rt := NewRuntime(prof,
		WithWorkers(2), WithQueueDepth(16), WithDropPolicy(Block),
		WithSessionSink(func(id string, a Alert) {
			mu.Lock()
			perSession[id]++
			mu.Unlock()
		}))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := rt.Session(fmt.Sprintf("s%d", i))
			if _, err := s.ObserveTrace(traces[i%len(traces)]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Calls == 0 || st.ActiveSessions != 0 {
		t.Fatalf("runtime stats: %v", st)
	}
	if err := rt.Session("late").Observe(Call{Label: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("observe after close: %v", err)
	}
	// Normal traces through the trained profile raise nothing.
	mu.Lock()
	defer mu.Unlock()
	if len(perSession) != 0 && st.AlertTotal() == 0 {
		t.Fatalf("sink fired without counted alerts: %v", perSession)
	}
}

// TestFacadeFaultToleranceSurface covers the robustness additions: context
// ingest, the judge hook quarantining a single session, and sink isolation
// options — all through the public facade.
func TestFacadeFaultToleranceSurface(t *testing.T) {
	app := HospitalApp()
	traces, err := app.CollectTraces(ModeADPROM)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := Train(app.Prog, traces, TrainOptions{Train: HMMOptions{MaxIters: 4}})
	if err != nil {
		t.Fatal(err)
	}

	rt := NewRuntime(prof,
		WithWorkers(2),
		WithSinkBuffer(8),
		WithSinkTimeout(time.Second),
		WithJudgeHook(func(session string, seq int, score float64, flagged bool) error {
			if session == "victim" {
				return errors.New("injected engine failure")
			}
			return nil
		}))
	defer rt.Close()

	ctx := context.Background()
	healthy := rt.Session("healthy")
	for _, c := range traces[0] {
		if err := healthy.ObserveContext(ctx, c); err != nil {
			t.Fatalf("healthy ObserveContext: %v", err)
		}
	}
	if _, err := healthy.FlushContext(ctx); err != nil {
		t.Fatalf("healthy FlushContext: %v", err)
	}

	victim := rt.Session("victim")
	_, err = victim.ObserveTrace(traces[0])
	if err == nil {
		_, err = victim.Flush() // short traces fail on the flush judgement
	}
	if !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("victim error = %v, want ErrSessionFailed", err)
	}
	if healthyErr := healthy.Err(); healthyErr != nil {
		t.Fatalf("healthy session infected: %v", healthyErr)
	}
	if st := rt.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1: %v", st.Quarantined, st)
	}
	if err := rt.CloseContext(ctx); err != nil {
		t.Fatalf("CloseContext: %v", err)
	}
}

func TestFacadeTrainContext(t *testing.T) {
	app := HospitalApp()
	traces, err := app.CollectTraces(ModeADPROM)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := TrainContext(ctx, app.Prog, traces, TrainOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled TrainContext: %v", err)
	}
	if _, err := app.CollectTracesContext(ctx, ModeADPROM); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled CollectTracesContext: %v", err)
	}
}

func TestFacadeFlagJSON(t *testing.T) {
	b, err := json.Marshal(FlagDL)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"DL"` {
		t.Fatalf("FlagDL marshals to %s", b)
	}
	var f Flag
	if err := json.Unmarshal(b, &f); err != nil || f != FlagDL {
		t.Fatalf("round trip: %v %v", f, err)
	}
}

// TestFacadeNilMonitorOption pins the compatibility contract: a nil
// MonitorOption is explicitly ignored, so the legacy NewMonitor(p, nil)
// spelling configures nothing and behaves exactly like NewMonitor(p) — and
// nils interleaved with real options are skipped without disturbing them.
func TestFacadeNilMonitorOption(t *testing.T) {
	app := HospitalApp()
	traces, err := app.CollectTraces(ModeADPROM)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := Train(app.Prog, traces, TrainOptions{Train: HMMOptions{MaxIters: 4}})
	if err != nil {
		t.Fatal(err)
	}

	plain := NewMonitor(prof)
	legacy := NewMonitor(prof, nil)
	if legacy.Engine().Threshold() != plain.Engine().Threshold() ||
		legacy.Engine().WindowLen() != plain.Engine().WindowLen() {
		t.Fatalf("nil option changed configuration: threshold %v/%v window %d/%d",
			legacy.Engine().Threshold(), plain.Engine().Threshold(),
			legacy.Engine().WindowLen(), plain.Engine().WindowLen())
	}
	want := plain.ObserveTrace(traces[0])
	got := legacy.ObserveTrace(traces[0])
	if len(got) != len(want) {
		t.Fatalf("nil option changed behaviour: %d alerts vs %d", len(got), len(want))
	}

	mixed := NewMonitor(prof, nil, WithThreshold(0), nil, WithWindowSize(5), nil)
	if mixed.Engine().Threshold() != 0 || mixed.Engine().WindowLen() != 5 {
		t.Fatalf("nils disturbed real options: threshold=%v window=%d",
			mixed.Engine().Threshold(), mixed.Engine().WindowLen())
	}
}

// TestFacadeLifecycleSurface drives the lifecycle additions through the
// public API: profile save/load with typed errors, manual SwapProfile with
// generation accounting, the registry, and a runtime wired to a lifecycle
// manager via WithLifecycle.
func TestFacadeLifecycleSurface(t *testing.T) {
	app := HospitalApp()
	traces, err := app.CollectTraces(ModeADPROM)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := Train(app.Prog, traces, TrainOptions{Train: HMMOptions{MaxIters: 4}})
	if err != nil {
		t.Fatal(err)
	}

	// Save / LoadProfile round trip, and the typed corruption error.
	var buf bytes.Buffer
	if err := prof.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)
	clone, err := LoadProfile(bytes.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	mangled := append([]byte(nil), saved...)
	mangled[len(mangled)/2] ^= 0x40
	if _, err := LoadProfile(bytes.NewReader(mangled)); !errors.Is(err, ErrCorruptProfile) {
		t.Fatalf("mangled profile: %v, want ErrCorruptProfile", err)
	}

	// A lifecycle-wired runtime: judgements reach the drift watcher, and a
	// manual SwapProfile publishes generation 2 with zero downtime.
	mgr := NewLifecycle(LifecycleConfig{})
	rt := NewRuntime(prof, WithWorkers(1), WithLifecycle(mgr), WithLifecycle(nil))
	defer rt.Close()
	mgr.Start()
	defer mgr.Stop()

	s := rt.Session("app")
	for _, tr := range traces {
		if _, err := s.ObserveTrace(tr); err != nil {
			t.Fatal(err)
		}
	}
	if got := mgr.Stats().DriftSamples; got == 0 {
		t.Error("no judgements reached the drift watcher through WithLifecycle")
	}
	gen, err := rt.SwapProfile(clone)
	if err != nil || gen != 2 {
		t.Fatalf("SwapProfile = %d, %v, want 2, nil", gen, err)
	}
	if _, err := s.ObserveTrace(traces[0]); err != nil {
		t.Fatal(err)
	}
	if st := rt.Stats(); st.Generation != 2 || st.Swaps != 1 {
		t.Fatalf("swap not visible in stats: %v", st)
	}

	// The registry persists generations and reloads them intact.
	reg, err := OpenProfileRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entry, err := reg.Add(clone, gen, "operator")
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := reg.LoadEntry(entry)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Program != prof.Program || reloaded.Threshold != prof.Threshold {
		t.Fatal("registry round trip diverged")
	}
}

func TestFacadeBundledApps(t *testing.T) {
	names := map[string]*App{
		"apph": HospitalApp(),
		"appb": BankingApp(),
		"apps": SupermarketApp(),
	}
	for want, app := range names {
		if app.Name != want {
			t.Errorf("app name %q, want %q", app.Name, want)
		}
	}
	if len(SIRApps()) != 4 {
		t.Errorf("SIRApps = %d", len(SIRApps()))
	}
	if len(BankingAttacks()) != 5 {
		t.Errorf("BankingAttacks = %d", len(BankingAttacks()))
	}
	if !strings.Contains(TautologyPayload, "OR") {
		t.Errorf("TautologyPayload = %q", TautologyPayload)
	}
}

// TestFacadeObservabilitySurface covers the observability additions end to
// end through the public API: the decision-provenance ring, latency
// histograms, structured event logging, and the live introspection endpoint.
func TestFacadeObservabilitySurface(t *testing.T) {
	app := HospitalApp()
	traces, err := app.CollectTraces(ModeADPROM)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := Train(app.Prog, traces, TrainOptions{Train: HMMOptions{MaxIters: 4}})
	if err != nil {
		t.Fatal(err)
	}

	prof.Threshold = 0 // every window flags, so provenance must hold alerts

	var logBuf bytes.Buffer
	var logMu sync.Mutex
	logger := slog.New(slog.NewTextHandler(syncWriter{&logMu, &logBuf}, nil))
	rt := NewRuntime(prof,
		WithWorkers(2),
		WithDecisionLog(256, 1),
		WithLogger(logger))
	s := rt.Session("obs-1")
	for _, c := range traces[0] {
		if err := s.Observe(c); err != nil {
			t.Fatal(err)
		}
	}
	alerts, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) == 0 {
		t.Fatal("threshold 0 raised no alerts; the provenance check is vacuous")
	}

	// Decision provenance: every alert is retained with its context.
	ds := rt.Decisions(0)
	var flagged int
	for _, d := range ds {
		if d.Flagged {
			flagged++
			if d.Session != "obs-1" || d.Generation == 0 || d.Flag == "Normal" {
				t.Errorf("alert decision incomplete: %+v", d)
			}
		}
	}
	if flagged != len(alerts) {
		t.Errorf("provenance holds %d alert decisions, want %d", flagged, len(alerts))
	}

	// Latency histograms mirror the counters.
	h := rt.Histograms()
	st := rt.Stats()
	if h.Observe.Count != st.Calls || h.Observe.Count == 0 {
		t.Errorf("observe histogram count %d vs calls %d", h.Observe.Count, st.Calls)
	}
	if st.P95Latency < st.P50Latency || st.MaxLatency < st.P99Latency {
		t.Errorf("percentiles inconsistent: %v", st)
	}

	// A profile swap emits a structured event through WithLogger.
	if _, err := rt.SwapProfile(prof); err != nil {
		t.Fatal(err)
	}
	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logged, "profile swapped") {
		t.Errorf("swap event missing from the structured log: %q", logged)
	}

	// The introspection endpoint over the live runtime.
	srv := httptest.NewServer(NewIntrospectionHandler(rt, nil))
	defer srv.Close()
	fetch := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}
	if code, body := fetch("/metrics"); code != 200 ||
		!strings.Contains(body, "adprom_calls_total") ||
		!strings.Contains(body, "adprom_observe_latency_seconds_bucket") {
		t.Errorf("/metrics = %d, body %.200s", code, body)
	}
	if code, body := fetch("/decisions?limit=5"); code != 200 {
		t.Errorf("/decisions = %d %s", code, body)
	} else {
		var got []Decision
		if err := json.Unmarshal([]byte(body), &got); err != nil || len(got) == 0 {
			t.Errorf("/decisions decode: %v (%d records)", err, len(got))
		}
	}
	if code, _ := fetch("/healthz"); code != 200 {
		t.Errorf("/healthz = %d", code)
	}
	if code, _ := fetch("/readyz"); code != 200 {
		t.Errorf("/readyz while serving = %d", code)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if code, body := fetch("/readyz"); code != 503 || !strings.Contains(body, "closed") {
		t.Errorf("/readyz after close = %d %q, want 503 with the cause", code, body)
	}
}

// syncWriter serialises the slog handler's writes against the test's reads.
type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
